//! Shared structure and helping machinery of the hazard-pointer queue.
//!
//! The control flow mirrors `crate::queue` (the epoch version) line for
//! line — the same paper line references apply — with two differences:
//!
//! 1. every shared dereference is covered by a hazard slot, validated
//!    by re-reading the pointer's source (see the table in the module
//!    docs);
//! 2. completed dequeues carry their value in the descriptor (§3.4), so
//!    the owner's epilogue reads no queue nodes.

use std::mem::ManuallyDrop;
use std::ptr;
use std::sync::atomic::{AtomicI64, AtomicPtr, Ordering};

use crossbeam_utils::CachePadded;
use hazard::{Domain, Participant};
use idpool::IdPool;
use queue_traits::{ConcurrentQueue, RegistrationError};

use crate::chaos_hooks::inject;
use crate::config::{Config, PhasePolicy};
use crate::hp::handle::WfHpHandle;
use crate::hp::types::{NodeHp, OpDescHp, H_DESC, H_NEXT, H_NODE, NO_DEQUEUER};
use crate::stats::{Stats, StatsSnapshot};

/// Fields of a descriptor, copied out while it was hazard-protected so
/// no reference outlives the protection window.
#[derive(Clone, Copy)]
pub(crate) struct DescView<T> {
    pub(crate) phase: i64,
    pub(crate) pending: bool,
    pub(crate) enqueue: bool,
    /// Retained for symmetry with the epoch version's descriptor view;
    /// the HP helpers re-read the node pointer under fresh protection
    /// (see `help_enq`) instead of using this copy.
    #[allow(dead_code)]
    pub(crate) node: *const NodeHp<T>,
}

/// The Kogan–Petrank wait-free queue with hazard-pointer reclamation
/// (paper §3.4): both the queue operations *and* memory management are
/// wait-free.
///
/// Same API and [`Config`] variants as [`WfQueue`](crate::WfQueue).
pub struct WfQueueHp<T> {
    pub(crate) head: CachePadded<AtomicPtr<NodeHp<T>>>,
    pub(crate) tail: CachePadded<AtomicPtr<NodeHp<T>>>,
    pub(crate) state: Box<[AtomicPtr<OpDescHp<T>>]>,
    phase_counter: CachePadded<AtomicI64>,
    pub(crate) domain: Domain,
    ids: IdPool,
    pub(crate) config: Config,
    pub(crate) stats: Stats,
}

// SAFETY: same protocol as the epoch version; see module docs for the
// value-ownership argument.
unsafe impl<T: Send> Send for WfQueueHp<T> {}
unsafe impl<T: Send> Sync for WfQueueHp<T> {}

impl<T: Send> WfQueueHp<T> {
    /// Creates a queue for at most `max_threads` registered handles with
    /// the default (`opt WF (1+2)`) configuration.
    pub fn new(max_threads: usize) -> Self {
        Self::with_config(max_threads, Config::default())
    }

    /// Creates a queue with an explicit algorithm [`Config`].
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` is zero or a chunked policy has a zero
    /// chunk.
    pub fn with_config(max_threads: usize, config: Config) -> Self {
        assert!(max_threads > 0, "max_threads must be positive");
        if let crate::HelpPolicy::Cyclic { chunk } | crate::HelpPolicy::RandomChunk { chunk } =
            config.help
        {
            assert!(chunk > 0, "help chunk must be positive");
        }
        let sentinel = NodeHp::sentinel();
        WfQueueHp {
            head: CachePadded::new(AtomicPtr::new(sentinel)),
            tail: CachePadded::new(AtomicPtr::new(sentinel)),
            state: (0..max_threads)
                .map(|_| AtomicPtr::new(OpDescHp::initial()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            phase_counter: CachePadded::new(AtomicI64::new(0)),
            domain: Domain::new(crate::hp::types::H_SLOTS),
            ids: IdPool::new(max_threads),
            config,
            stats: Stats::default(),
        }
    }

    /// The configuration this queue runs with.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Maximum simultaneously registered handles.
    pub fn max_threads(&self) -> usize {
        self.state.len()
    }

    /// A copy of the helping statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Approximate length (O(n); callers must be externally quiesced —
    /// unlike the epoch version there is no pin to keep a traversal
    /// safe, so this walks only when no concurrent dequeuers run;
    /// intended for tests and diagnostics).
    pub fn len_approx_quiescent(&self) -> usize {
        let mut n = 0;
        // SAFETY: quiescence contract — no concurrent retirement.
        unsafe {
            let mut cur = (*self.head.load(Ordering::SeqCst)).next.load(Ordering::SeqCst);
            while !cur.is_null() {
                n += 1;
                cur = (*cur).next.load(Ordering::SeqCst);
            }
        }
        n
    }

    // ------------------------------------------------------------------
    // Auxiliary methods (Figure 2)
    // ------------------------------------------------------------------

    /// Protects and copies `state[tid]`'s fields (slot `H_DESC` is
    /// released before returning; only POD fields are copied out).
    pub(crate) fn read_desc(&self, p: &Participant<'_>, tid: usize) -> DescView<T> {
        let d = p.protect(H_DESC, &self.state[tid]);
        // SAFETY: protected by H_DESC; descriptors are never null.
        let view = unsafe {
            DescView {
                phase: (*d).phase,
                pending: (*d).pending,
                enqueue: (*d).enqueue,
                node: (*d).node,
            }
        };
        p.clear(H_DESC);
        view
    }

    /// `maxPhase()`, L48–57.
    pub(crate) fn max_phase(&self, p: &Participant<'_>) -> i64 {
        Stats::bump(&self.stats.phase_scans);
        let mut max = -1;
        for tid in 0..self.state.len() {
            max = max.max(self.read_desc(p, tid).phase);
        }
        max
    }

    /// Phase selection (L62/L99 or the §3.3 counter).
    pub(crate) fn next_phase(&self, p: &Participant<'_>) -> i64 {
        match self.config.phase {
            PhasePolicy::MaxScan => self.max_phase(p) + 1,
            PhasePolicy::AtomicCounter => self.phase_counter.fetch_add(1, Ordering::SeqCst) + 1,
        }
    }

    /// `isStillPending(tid, ph)`, L58–60, folded into the helper loops
    /// as a fresh `read_desc` copy per iteration (the descriptor fields
    /// must be re-read anyway, so a separate method would double the
    /// protected reads).

    /// Publishes a fresh descriptor in `state[tid]` (L63/L100), retiring
    /// the displaced one.
    pub(crate) fn publish(&self, p: &mut Participant<'_>, tid: usize, desc: *mut OpDescHp<T>) {
        let old = self.state[tid].swap(desc, Ordering::SeqCst);
        // SAFETY: `old` was just unlinked from the slot; readers hold
        // hazard protection, which retire/scan respects.
        unsafe { p.retire(old) };
    }

    /// CAS `state[tid]`: `cur → new`, retiring `cur` on success and
    /// freeing the unused `new` allocation on failure (descriptor drops
    /// never touch the value — see `OpDescHp`).
    pub(crate) fn cas_state(
        &self,
        p: &mut Participant<'_>,
        tid: usize,
        cur: *mut OpDescHp<T>,
        new: *mut OpDescHp<T>,
    ) -> bool {
        if self.state[tid]
            .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            // SAFETY: `cur` unlinked by our CAS.
            unsafe { p.retire(cur) };
            true
        } else {
            // SAFETY: `new` never escaped.
            unsafe { drop(Box::from_raw(new)) };
            false
        }
    }

    /// One `help()` scan step (L38–45).
    pub(crate) fn help_index(&self, p: &mut Participant<'_>, i: usize, ph: i64, helper: usize) {
        let d = self.read_desc(p, i);
        if d.pending && d.phase <= ph {
            if i != helper {
                Stats::bump(&self.stats.help_calls);
            }
            if d.enqueue {
                self.help_enq(p, i, ph, helper);
            } else {
                self.help_deq(p, i, ph, helper);
            }
        }
    }

    /// `help(phase)`, L36–47.
    pub(crate) fn help_all(&self, p: &mut Participant<'_>, ph: i64, helper: usize) {
        for i in 0..self.state.len() {
            self.help_index(p, i, ph, helper);
        }
    }

    // ------------------------------------------------------------------
    // enqueue machinery (Figure 4)
    // ------------------------------------------------------------------

    /// `help_enq`, L67–84.
    pub(crate) fn help_enq(&self, p: &mut Participant<'_>, tid: usize, ph: i64, helper: usize) {
        loop {
            // L68 + L73 in one protected read: copy the descriptor's
            // fields fresh each iteration.
            let d = self.read_desc(p, tid);
            if !(d.pending && d.phase <= ph) {
                return;
            }
            let last = p.protect(H_NODE, &*self.tail); // L69
            // SAFETY: protected; the tail node is never retired while
            // tail can still point at it (head never overtakes tail).
            let next = unsafe { (*last).next.load(Ordering::SeqCst) }; // L70
            if self.tail.load(Ordering::SeqCst) != last {
                continue; // L71 failed
            }
            if next.is_null() {
                // L72–74: append the owner's node.
                //
                // Without a GC this is the one step where a pointer read
                // *out of a descriptor* is published into the structure,
                // so it needs its own protection: re-read the descriptor
                // under H_DESC, hazard its node in H_NEXT, and validate
                // the slot still holds the same descriptor. Descriptor
                // unchanged ⇒ the operation is still pending ⇒ its node
                // has not been appended yet, let alone dequeued/retired
                // (retire is ordered after the pending→false CAS), so
                // the hazard covers a live node from a point where it
                // was still reachable. Trusting the earlier copy `d`
                // instead is a real use-after-free: the op can complete
                // and its node be freed — or recycled as another
                // thread's fresh node, which a stale CAS would then
                // double-insert.
                let cur = p.protect(H_DESC, &self.state[tid]);
                // SAFETY: protected by H_DESC.
                let (c_pending, c_phase, c_enqueue, c_node) = unsafe {
                    ((*cur).pending, (*cur).phase, (*cur).enqueue, (*cur).node)
                };
                let mut appended = false;
                if c_pending && c_phase <= ph && c_enqueue {
                    inject!("kp_hp.append");
                    p.set(H_NEXT, c_node as *mut NodeHp<T>);
                    if self.state[tid].load(Ordering::SeqCst) == cur {
                        // SAFETY: `last` is protected by H_NODE; `c_node`
                        // is validated-live as argued above (the CAS does
                        // not dereference it, but it must not publish a
                        // dangling pointer).
                        appended = unsafe {
                            (*last).next.compare_exchange(
                                ptr::null_mut(),
                                c_node as *mut _,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            )
                        }
                        .is_ok();
                    }
                    p.clear(H_NEXT);
                }
                p.clear(H_DESC);
                if appended {
                    Stats::bump(&self.stats.appends_total);
                    if helper != tid {
                        Stats::bump(&self.stats.helped_appends);
                    }
                    self.help_finish_enq(p); // L75
                    return;
                }
            } else {
                // L79–80: finish the in-progress enqueue first.
                self.help_finish_enq(p);
            }
        }
    }

    /// `help_finish_enq`, L85–97.
    pub(crate) fn help_finish_enq(&self, p: &mut Participant<'_>) {
        let last = p.protect(H_NODE, &*self.tail); // L86
        // SAFETY: protected as in help_enq.
        let next = unsafe { (*last).next.load(Ordering::SeqCst) }; // L87
        if next.is_null() {
            return;
        }
        // Protect `next` before dereferencing: while `last` is still the
        // tail, head ≤ last < next, so next cannot have been retired.
        p.set(H_NEXT, next);
        if self.tail.load(Ordering::SeqCst) != last {
            p.clear(H_NEXT);
            return;
        }
        // SAFETY: H_NEXT hazard validated above.
        let tid = unsafe { (*next).enq_tid }; // L89
        debug_assert!(tid < self.state.len());
        let cur = p.protect(H_DESC, &self.state[tid]); // L90
        // SAFETY: protected by H_DESC.
        let (cur_phase, cur_pending, cur_node) =
            unsafe { ((*cur).phase, (*cur).pending, (*cur).node) };
        // L91
        if self.tail.load(Ordering::SeqCst) == last && ptr::eq(cur_node, next) {
            inject!("kp_hp.clear_pending.enq");
            if !(self.config.validate_before_cas && !cur_pending) {
                // L92–93: step 2.
                let new = OpDescHp::boxed(cur_phase, false, true, next, None);
                self.cas_state(p, tid, cur, new);
            }
            inject!("kp_hp.swing_tail");
            // L94: step 3.
            let _ = self
                .tail
                .compare_exchange(last, next, Ordering::SeqCst, Ordering::SeqCst);
        }
        p.clear(H_DESC);
        p.clear(H_NEXT);
    }

    // ------------------------------------------------------------------
    // dequeue machinery (Figure 6)
    // ------------------------------------------------------------------

    /// `help_deq`, L109–140.
    pub(crate) fn help_deq(&self, p: &mut Participant<'_>, tid: usize, ph: i64, helper: usize) {
        loop {
            let d0 = self.read_desc(p, tid); // L110
            if !(d0.pending && d0.phase <= ph) {
                return;
            }
            let first = p.protect(H_NODE, &*self.head); // L111
            let last = self.tail.load(Ordering::SeqCst); // L112
            // SAFETY: `first` protected; sentinels are retired only
            // after head moves off them, which protect() rules out.
            let next = unsafe { (*first).next.load(Ordering::SeqCst) }; // L113
            if self.head.load(Ordering::SeqCst) != first {
                continue; // L114
            }
            if first == last {
                // L115: queue might be empty.
                if next.is_null() {
                    // L116–121: record the empty result.
                    let cur = p.protect(H_DESC, &self.state[tid]); // L117
                    // SAFETY: protected by H_DESC.
                    let (cur_phase, cur_pending) = unsafe { ((*cur).phase, (*cur).pending) };
                    if self.tail.load(Ordering::SeqCst) == last && cur_pending && cur_phase <= ph
                    {
                        inject!("kp_hp.clear_pending.deq_empty");
                        let new = OpDescHp::boxed(cur_phase, false, false, ptr::null(), None);
                        self.cas_state(p, tid, cur, new);
                    }
                    p.clear(H_DESC);
                } else {
                    // L122–123.
                    self.help_finish_enq(p);
                }
            } else {
                // L125–137: queue is not empty.
                let cur = p.protect(H_DESC, &self.state[tid]); // L126
                // SAFETY: protected by H_DESC.
                let (cur_phase, cur_pending, cur_node) =
                    unsafe { ((*cur).phase, (*cur).pending, (*cur).node) };
                if !(cur_pending && cur_phase <= ph) {
                    p.clear(H_DESC);
                    return; // L128
                }
                // L129–134: stage 0.
                if self.head.load(Ordering::SeqCst) == first && !ptr::eq(cur_node, first) {
                    inject!("kp_hp.bind_sentinel");
                    let new = OpDescHp::boxed(cur_phase, true, false, first, None);
                    let ok = self.cas_state(p, tid, cur, new);
                    p.clear(H_DESC);
                    if !ok {
                        continue; // L132
                    }
                } else {
                    p.clear(H_DESC);
                }
                inject!("kp_hp.lock_sentinel");
                // L135: step 1 — lock the sentinel (linearization).
                // SAFETY: `first` still protected by H_NODE.
                let locked = unsafe {
                    (*first).deq_tid.compare_exchange(
                        NO_DEQUEUER,
                        tid as isize,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                }
                .is_ok();
                if locked {
                    Stats::bump(&self.stats.locks_total);
                    if helper != tid {
                        Stats::bump(&self.stats.helped_locks);
                    }
                }
                // L136.
                self.help_finish_deq(p);
            }
        }
    }

    /// `help_finish_deq`, L141–153, with the §3.4 value hand-off.
    pub(crate) fn help_finish_deq(&self, p: &mut Participant<'_>) {
        let first = p.protect(H_NODE, &*self.head); // L142
        // SAFETY: protected.
        let next = unsafe { (*first).next.load(Ordering::SeqCst) }; // L143
        // Protect `next` before any use: while `first` is still the
        // head, `next` cannot have been retired (head must pass `first`
        // before it can pass `next`).
        p.set(H_NEXT, next);
        if self.head.load(Ordering::SeqCst) != first {
            p.clear(H_NEXT);
            return;
        }
        // SAFETY: `first` protected by H_NODE.
        let tid = unsafe { (*first).deq_tid.load(Ordering::SeqCst) }; // L144
        if tid != NO_DEQUEUER {
            // A locked sentinel was observed: the window between dequeue
            // steps 1 and 2.
            inject!("kp_hp.clear_pending.deq");
            let tid = tid as usize;
            let cur = p.protect(H_DESC, &self.state[tid]); // L146
            // SAFETY: protected by H_DESC.
            let (cur_phase, cur_pending, cur_node) =
                unsafe { ((*cur).phase, (*cur).pending, (*cur).node) };
            // L147.
            if self.head.load(Ordering::SeqCst) == first && !next.is_null() {
                if !(self.config.validate_before_cas && !cur_pending) {
                    // L148–149: step 2, carrying the value (§3.4). The
                    // copy is a plain read: node values are never
                    // written after publication, and exactly one
                    // descriptor (the CAS winner) becomes the value's
                    // owner — losers free their box without dropping
                    // (ManuallyDrop).
                    // SAFETY: `next` covered by H_NEXT, validated above.
                    let value: ManuallyDrop<Option<T>> =
                        unsafe { ptr::read(&(*next).value) };
                    let new = Box::into_raw(Box::new(OpDescHp {
                        phase: cur_phase,
                        pending: false,
                        enqueue: false,
                        node: cur_node,
                        value,
                    }));
                    self.cas_state(p, tid, cur, new);
                }
                inject!("kp_hp.swing_head");
                // L150: step 3. The winner retires the removed sentinel
                // — this is the §3.4 "call RetireNode right at the end
                // of help_deq" point.
                if self
                    .head
                    .compare_exchange(first, next, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    // SAFETY: `first` is unlinked; its value ownership
                    // moved out when *it* became the sentinel (or never
                    // existed), and NodeHp's drop glue never drops
                    // values.
                    unsafe { p.retire(first) };
                }
            }
            p.clear(H_DESC);
        }
        p.clear(H_NEXT);
    }
}

impl<T: Send> ConcurrentQueue<T> for WfQueueHp<T> {
    type Handle<'a>
        = WfHpHandle<'a, T>
    where
        T: 'a;

    fn register(&self) -> Result<Self::Handle<'_>, RegistrationError> {
        match self.ids.acquire() {
            Some(id) => Ok(WfHpHandle::new(self, id, self.domain.enter())),
            None => Err(RegistrationError {
                capacity: self.max_threads(),
            }),
        }
    }

    fn thread_capacity(&self) -> usize {
        self.max_threads()
    }
}

impl<T> Drop for WfQueueHp<T> {
    fn drop(&mut self) {
        // Exclusive access. Descriptors: plain frees (values, if any,
        // were taken by their owners; ManuallyDrop keeps this sound).
        for slot in self.state.iter() {
            let d = slot.load(Ordering::Relaxed);
            // SAFETY: exclusive; each slot owns its descriptor.
            unsafe { drop(Box::from_raw(d)) };
        }
        // Nodes: the sentinel's value ownership already left (or never
        // existed); every later node still owns its value.
        let mut cur = *self.head.get_mut();
        let mut is_sentinel = true;
        while !cur.is_null() {
            // SAFETY: exclusive access; list nodes are owned by the list
            // (retired nodes are owned by the hazard domain, dropped
            // next).
            unsafe {
                let mut node = Box::from_raw(cur);
                cur = node.next.load(Ordering::Relaxed);
                if !is_sentinel {
                    ManuallyDrop::drop(&mut node.value);
                }
                is_sentinel = false;
            }
        }
        // `self.domain` drops after this body, freeing retired nodes and
        // descriptors (whose drop glue leaves values alone — correct,
        // since everything retired had its value moved out).
    }
}

impl<T: Send> std::fmt::Debug for WfQueueHp<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WfQueueHp")
            .field("max_threads", &self.max_threads())
            .field("config", &self.config)
            .finish()
    }
}
