//! Shared structure and helping machinery of the hazard-pointer queue.
//!
//! The control flow mirrors `crate::queue` (the epoch version) line for
//! line — the same paper line references and memory-ordering audit
//! apply — with two differences:
//!
//! 1. every shared *node* dereference is covered by a hazard slot,
//!    validated by re-reading the pointer's source. Descriptors need no
//!    hazard at all: `state[tid]` is an in-place packed [`StateSlot`]
//!    word (`crate::desc`), read with one atomic load. This dissolves
//!    the seed's `H_DESC` re-protect/validate dance — and with it a
//!    whole class of descriptor lifetime bugs — because there is no
//!    descriptor object whose lifetime could end mid-read.
//! 2. a completed non-empty dequeue's word points at the *value node*
//!    (the new sentinel) rather than couriering the value through a
//!    descriptor (§3.4's copy). The owner's epilogue dereferences that
//!    node hazard-free, protected by the two-token disposal gate on the
//!    node (`hp::pool`): the node cannot be freed or recycled before
//!    the owner's `TOKEN_CONSUMED` fetch_or, which the owner itself
//!    performs after taking the value.
//!
//! [`StateSlot`]: crate::desc::StateSlot

use std::ptr;
use kp_sync::atomic::{AtomicI64, AtomicPtr, AtomicUsize, Ordering};

use kp_sync::CachePadded;
use hazard::{Domain, Participant};
use idpool::IdPool;
use queue_traits::{ConcurrentQueue, RegistrationError};

use crate::chaos_hooks::inject;
use crate::config::{Config, PhasePolicy};
use crate::desc::StateSlot;
use crate::hp::handle::WfHpHandle;
use crate::hp::pool::{reclaim_into_pool, NodePool};
use crate::hp::types::{
    NodeHp, FAST_DEQUEUER, FAST_ENQUEUER, H_NEXT, H_NODE, H_SLOTS, NO_DEQUEUER, TOKEN_CONSUMED,
    TOKEN_RECLAIM_READY,
};
use crate::queue::FastDeq;
use crate::stats::{Stats, StatsSnapshot};

/// The Kogan–Petrank wait-free queue with hazard-pointer reclamation
/// (paper §3.4): both the queue operations *and* memory management are
/// wait-free.
///
/// Same API and [`Config`] variants as [`WfQueue`](crate::WfQueue).
pub struct WfQueueHp<T> {
    pub(crate) head: CachePadded<AtomicPtr<NodeHp<T>>>,
    pub(crate) tail: CachePadded<AtomicPtr<NodeHp<T>>>,
    /// One reusable descriptor slot per virtual thread ID, padded to its
    /// own cache line — same representation as the epoch variant.
    pub(crate) state: Box<[CachePadded<StateSlot>]>,
    phase_counter: CachePadded<AtomicI64>,
    pub(crate) domain: Domain,
    /// Node freelist. Boxed so `ctx` pointers held by retired nodes stay
    /// valid if the queue value moves, and declared *after* `domain` so
    /// it drops later: `Domain::drop` reclaims leftover orphans, and
    /// those reclaims release into this pool.
    pool: Box<NodePool<T>>,
    pub(crate) ids: IdPool,
    /// `hazard::Participant::record_token` of each slot's current
    /// handle, written at registration, cleared by handle drop or by
    /// the reaper (which quarantines it) — the HP analogue of
    /// `WfQueue::epoch_tokens`. `0` = none.
    pub(crate) hp_tokens: Box<[CachePadded<AtomicUsize>]>,
    pub(crate) config: Config,
    pub(crate) stats: Stats,
}

// SAFETY: same protocol as the epoch version — all cross-thread traffic
// is atomics except node payloads (written while exclusively owned,
// taken exactly once by the unique dequeue owner under the token gate)
// and `enq_tid` (rewritten only while exclusively owned).
unsafe impl<T: Send> Send for WfQueueHp<T> {}
// SAFETY: as for Send.
unsafe impl<T: Send> Sync for WfQueueHp<T> {}

impl<T: Send> WfQueueHp<T> {
    /// Creates a queue for at most `max_threads` registered handles with
    /// the default (`opt WF (1+2)`) configuration.
    pub fn new(max_threads: usize) -> Self {
        Self::with_config(max_threads, Config::default())
    }

    /// Creates a queue with an explicit algorithm [`Config`].
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` is zero or a chunked policy has a zero
    /// chunk.
    pub fn with_config(max_threads: usize, config: Config) -> Self {
        assert!(max_threads > 0, "max_threads must be positive");
        if let crate::HelpPolicy::Cyclic { chunk } | crate::HelpPolicy::RandomChunk { chunk } =
            config.help
        {
            assert!(chunk > 0, "help chunk must be positive");
        }
        let sentinel = NodeHp::sentinel();
        WfQueueHp {
            head: CachePadded::new(AtomicPtr::new(sentinel)),
            tail: CachePadded::new(AtomicPtr::new(sentinel)),
            state: (0..max_threads)
                .map(|_| CachePadded::new(StateSlot::initial()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            phase_counter: CachePadded::new(AtomicI64::new(0)),
            domain: Domain::new(H_SLOTS),
            pool: Box::new(NodePool::new(config.reuse_nodes)),
            ids: IdPool::new(max_threads),
            hp_tokens: (0..max_threads)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            config,
            stats: Stats::default(),
        }
    }

    /// The configuration this queue runs with.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Maximum simultaneously registered handles.
    pub fn max_threads(&self) -> usize {
        self.state.len()
    }

    /// A copy of the helping statistics. `cache_overflows` includes the
    /// shared pool's over-cap frees (counted pool-side because reclaim
    /// callbacks cannot reach the queue's feature-gated `Stats`).
    pub fn stats(&self) -> StatsSnapshot {
        #[allow(unused_mut)]
        let mut snapshot = self.stats.snapshot();
        #[cfg(feature = "stats")]
        {
            snapshot.cache_overflows += self.pool.overflows();
        }
        snapshot
    }

    /// The queue's node freelist (dequeue epilogues release through it).
    pub(crate) fn pool(&self) -> &NodePool<T> {
        &self.pool
    }

    /// Approximate length (O(n); callers must be externally quiesced —
    /// unlike the epoch version there is no pin to keep a traversal
    /// safe, so this walks only when no concurrent dequeuers run;
    /// intended for tests and diagnostics).
    pub fn len_approx_quiescent(&self) -> usize {
        let mut n = 0;
        // SAFETY: quiescence contract — no concurrent retirement.
        unsafe {
            let mut cur = (*self.head.load(Ordering::SeqCst)).next.load(Ordering::SeqCst);
            while !cur.is_null() {
                n += 1;
                cur = (*cur).next.load(Ordering::SeqCst);
            }
        }
        n
    }

    // ------------------------------------------------------------------
    // Auxiliary methods (Figure 2)
    // ------------------------------------------------------------------

    /// `maxPhase()`, L48–57. SeqCst: the Bakery-doorway argument, see
    /// the epoch version.
    pub(crate) fn max_phase(&self) -> i64 {
        Stats::bump(&self.stats.phase_scans);
        let mut max = -1;
        for slot in self.state.iter() {
            max = max.max(slot.load_phase(Ordering::SeqCst));
        }
        max
    }

    /// Phase selection (L62/L99 or the §3.3 counter).
    pub(crate) fn next_phase(&self) -> i64 {
        match self.config.phase {
            PhasePolicy::MaxScan => self.max_phase() + 1,
            PhasePolicy::AtomicCounter => self.phase_counter.fetch_add(1, Ordering::SeqCst) + 1,
        }
    }

    /// `isStillPending(tid, ph)`, L58–60. SeqCst: gates the helping
    /// obligation (see the epoch version's Lemma 2 note).
    pub(crate) fn is_still_pending(&self, tid: usize, ph: i64) -> bool {
        let (w, phase) = self.state[tid].view(Ordering::SeqCst);
        w.pending() && phase <= ph
    }

    /// One `help()` scan step (L38–45).
    pub(crate) fn help_index(&self, p: &mut Participant<'_>, i: usize, ph: i64, helper: usize) {
        let (w, phase) = self.state[i].view(Ordering::SeqCst);
        if w.pending() && phase <= ph {
            if i != helper {
                Stats::bump(&self.stats.help_calls);
            }
            if w.enqueue() {
                self.help_enq(p, i, ph, helper);
            } else {
                self.help_deq(p, i, ph, helper);
            }
        }
    }

    /// `help(phase)`, L36–47.
    pub(crate) fn help_all(&self, p: &mut Participant<'_>, ph: i64, helper: usize) {
        for i in 0..self.state.len() {
            self.help_index(p, i, ph, helper);
        }
    }

    /// Hands an unlinked sentinel to reclamation. The disposal runs
    /// through the node's token gate so the dequeue owner's hazard-free
    /// epilogue dereference stays safe (see `hp::pool`).
    fn retire_node(&self, p: &mut Participant<'_>, node: *mut NodeHp<T>) {
        let ctx = (&*self.pool as *const NodePool<T> as *mut NodePool<T>).cast();
        // SAFETY: `node` was unlinked by the unique head-CAS winner and
        // is retired once; `ctx` outlives every reclaim (the pool Box
        // drops after the domain — field order above).
        unsafe { p.retire_with(node.cast(), ctx, reclaim_into_pool::<T>) };
    }

    // ------------------------------------------------------------------
    // enqueue machinery (Figure 4)
    // ------------------------------------------------------------------

    /// `help_enq`, L67–84.
    pub(crate) fn help_enq(&self, p: &mut Participant<'_>, tid: usize, ph: i64, helper: usize) {
        while self.is_still_pending(tid, ph) {
            let last = p.protect(H_NODE, &*self.tail); // L69
            // SAFETY: protected; a node is retired only after head moves
            // off it, which cannot happen while it is still the tail.
            let next = unsafe { (*last).next.load(Ordering::SeqCst) }; // L70
            if self.tail.load(Ordering::SeqCst) != last {
                continue; // L71 failed
            }
            if next.is_null() {
                // L72–74: append the owner's node. One SeqCst slot read
                // replaces the seed's protect-H_DESC/validate dance —
                // the descriptor is a word, not an object. The node it
                // names is safe to *publish* (never dereferenced here)
                // by the CAS-success argument of the epoch version,
                // which recycling does not weaken: success proves
                // `last.next` was null, and while we hold the H_NODE
                // hazard `last` cannot be reclaimed and reused, so its
                // `next` is write-once during the window — null at CAS
                // time means no append happened since our slot read,
                // hence the owner's operation is still the one we read
                // and its node was never appended, retired, or recycled.
                let (w, phase) = self.state[tid].view(Ordering::SeqCst);
                if w.pending() && phase <= ph && w.enqueue() {
                    inject!("kp_hp.append");
                    let node = w.node_ptr::<NodeHp<T>>();
                    // SAFETY: `last` is protected by H_NODE.
                    let appended = unsafe {
                        (*last).next.compare_exchange(
                            ptr::null_mut(),
                            node,
                            Ordering::SeqCst,
                            Ordering::Relaxed,
                        )
                    }
                    .is_ok();
                    if appended {
                        Stats::bump(&self.stats.appends_total);
                        if helper != tid {
                            Stats::bump(&self.stats.helped_appends);
                        }
                        self.help_finish_enq(p); // L75
                        return;
                    }
                }
            } else {
                // L79–80: finish the in-progress enqueue first.
                self.help_finish_enq(p);
            }
        }
    }

    /// `help_finish_enq`, L85–97.
    pub(crate) fn help_finish_enq(&self, p: &mut Participant<'_>) {
        let last = p.protect(H_NODE, &*self.tail); // L86
        // SAFETY: protected as in help_enq.
        let next = unsafe { (*last).next.load(Ordering::SeqCst) }; // L87
        if next.is_null() {
            return;
        }
        // Protect `next` before dereferencing: while `last` is still the
        // tail, head ≤ last < next, so next cannot have been retired.
        p.set(H_NEXT, next);
        if self.tail.load(Ordering::SeqCst) != last {
            p.clear(H_NEXT);
            return;
        }
        // SAFETY: H_NEXT hazard validated above.
        let tid = unsafe { (*next).enq_tid }; // L89
        if tid == FAST_ENQUEUER {
            // Fast-path node: no descriptor to complete (the append CAS
            // both linearized and acknowledged the operation), so step
            // 2 — and the L91 identity check, which could never pass —
            // is skipped. The tail CAS re-validates by itself.
            inject!("kp_hp.swing_tail");
            let _ = self
                .tail
                .compare_exchange(last, next, Ordering::SeqCst, Ordering::Relaxed);
            p.clear(H_NEXT);
            return;
        }
        debug_assert!(tid < self.state.len());
        // L90: SeqCst, not Acquire — same recycling counterexample as
        // the epoch version: an Acquire-stale completed word of an older
        // operation that reused the same node has fields equal to the
        // transition target, and the no-op skip would swing the tail
        // with the current operation still pending.
        let cur = self.state[tid].load_ctrl(Ordering::SeqCst);
        // L91: `last` still tail and the owner's descriptor still refers
        // to the dangling node.
        if self.tail.load(Ordering::SeqCst) == last && cur.node_addr() == next as usize {
            inject!("kp_hp.clear_pending.enq");
            if !self.config.validate_before_cas || cur.pending() {
                // L92–93: step 2 (version-tagged in-place transition).
                self.state[tid].cas_ctrl(cur, next as usize, false, true);
            }
            inject!("kp_hp.swing_tail");
            // L94: step 3.
            let _ = self
                .tail
                .compare_exchange(last, next, Ordering::SeqCst, Ordering::Relaxed);
        }
        p.clear(H_NEXT);
    }

    // ------------------------------------------------------------------
    // dequeue machinery (Figure 6)
    // ------------------------------------------------------------------

    /// `help_deq`, L109–140.
    pub(crate) fn help_deq(&self, p: &mut Participant<'_>, tid: usize, ph: i64, helper: usize) {
        while self.is_still_pending(tid, ph) {
            let first = p.protect(H_NODE, &*self.head); // L111
            let last = self.tail.load(Ordering::SeqCst); // L112
            // SAFETY: `first` protected; sentinels are retired only
            // after head moves off them, which protect() rules out.
            let next = unsafe { (*first).next.load(Ordering::SeqCst) }; // L113
            if self.head.load(Ordering::SeqCst) != first {
                continue; // L114
            }
            if first == last {
                // L115: queue might be empty.
                if next.is_null() {
                    // L116–121: record the empty result. L117 SeqCst:
                    // the doorway guard (see the epoch version).
                    let (cur, phase) = self.state[tid].view(Ordering::SeqCst);
                    if self.tail.load(Ordering::SeqCst) == last && cur.pending() && phase <= ph {
                        inject!("kp_hp.clear_pending.deq_empty");
                        self.state[tid].cas_ctrl(cur, 0, false, false);
                    }
                } else {
                    // L122–123.
                    self.help_finish_enq(p);
                }
            } else {
                // L125–137: queue is not empty. L126 SeqCst as L117/L146.
                let (cur, phase) = self.state[tid].view(Ordering::SeqCst);
                if !(cur.pending() && phase <= ph) {
                    break; // L128
                }
                // L129–134: stage 0 — bind the current sentinel.
                if self.head.load(Ordering::SeqCst) == first
                    && cur.node_addr() != first as usize
                {
                    inject!("kp_hp.bind_sentinel");
                    if !self.state[tid].cas_ctrl(cur, first as usize, true, false) {
                        continue; // L132: descriptor changed; restart
                    }
                }
                inject!("kp_hp.lock_sentinel");
                // L135: step 1 — lock the sentinel (linearization).
                // SAFETY: `first` still protected by H_NODE.
                let locked = unsafe {
                    (*first).deq_tid.compare_exchange(
                        NO_DEQUEUER,
                        tid as isize,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    )
                }
                .is_ok();
                if locked {
                    Stats::bump(&self.stats.locks_total);
                    if helper != tid {
                        Stats::bump(&self.stats.helped_locks);
                    }
                }
                // L136.
                self.help_finish_deq(p);
            }
        }
    }

    /// `help_finish_deq`, L141–153, with the node hand-off that replaces
    /// the seed's §3.4 value courier: step 2 completes the owner's word
    /// pointing at `next` — the *value node* — instead of couriering a
    /// copy of the value through a descriptor. The owner's epilogue
    /// takes the value out of that node under the token gate.
    pub(crate) fn help_finish_deq(&self, p: &mut Participant<'_>) {
        let first = p.protect(H_NODE, &*self.head); // L142
        // SAFETY: protected.
        let next = unsafe { (*first).next.load(Ordering::SeqCst) }; // L143
        // Protect `next` before the head swing: while `first` is still
        // the head, `next` cannot have been retired (head must pass
        // `first` before it can pass `next`).
        p.set(H_NEXT, next);
        if self.head.load(Ordering::SeqCst) != first {
            p.clear(H_NEXT);
            return;
        }
        // SAFETY: `first` protected by H_NODE.
        let tid = unsafe { (*first).deq_tid.load(Ordering::SeqCst) }; // L144
        if tid == FAST_DEQUEUER {
            // Fast-locked sentinel: the `deqTid` CAS both linearized
            // the dequeue and made the fast dequeuer the unique value
            // taker (it reads through its own hazard, no courier), so
            // step 2 is skipped. Step 3 and winner-retires unchanged.
            inject!("kp_hp.swing_head");
            if self.head.load(Ordering::SeqCst) == first
                && !next.is_null()
                && self
                    .head
                    .compare_exchange(first, next, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
            {
                self.retire_node(p, first);
            }
            p.clear(H_NEXT);
            return;
        }
        if tid != NO_DEQUEUER {
            // A locked sentinel was observed: the window between dequeue
            // steps 1 and 2.
            inject!("kp_hp.clear_pending.deq");
            let tid = tid as usize;
            // L146: SeqCst — the L90 recycling argument, mirrored.
            let cur = self.state[tid].load_ctrl(Ordering::SeqCst);
            if self.head.load(Ordering::SeqCst) == first && !next.is_null() {
                // L147. All step-2 racers compute the same `next`: they
                // all validated `first` as head while holding a hazard
                // on it, and a hazarded node's `next` is write-once.
                if !self.config.validate_before_cas || cur.pending() {
                    // L148–149: step 2 — acknowledge linearization and
                    // hand the owner its value node.
                    self.state[tid].cas_ctrl(cur, next as usize, false, false);
                }
                inject!("kp_hp.swing_head");
                // L150: step 3 — fix head. The winner retires the
                // removed sentinel (§3.4's "RetireNode at the end of
                // help_deq" point).
                if self
                    .head
                    .compare_exchange(first, next, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    self.retire_node(p, first);
                }
            }
        }
        p.clear(H_NEXT);
    }

    // ------------------------------------------------------------------
    // abandoned-handle reaping (DESIGN.md §13)
    // ------------------------------------------------------------------

    /// Executes a reap of `victim`'s slot; the HP mirror of
    /// [`WfQueue::reap_slot`](crate::WfQueue) — see there for the full
    /// sequence (adopt → drive past the L91 wedge → `try_retire`
    /// election → winner-only destructive steps → `finish_reap`). The
    /// two HP-specific differences:
    ///
    /// * the claim of an adopted dequeue's result reads the *value
    ///   node* the step-2 CAS handed the victim and completes its
    ///   token gate (`TOKEN_CONSUMED`), exactly as the owner's
    ///   epilogue would. Liveness: the word went pending→completed
    ///   during this reap (we saw it pending at entry), so nobody has
    ///   set CONSUMED yet — the gate holds the node allocated however
    ///   long ago its predecessor's retirement was scanned.
    /// * quarantining goes through [`Domain::quarantine`]: the
    ///   victim's leaked hazard record gets its slots nulled and is
    ///   parked for adoption, so its stale hazards stop excluding
    ///   nodes from reclamation. No pinned-check is needed — a record
    ///   is per-handle, not per-OS-thread, so a revoked lease means no
    ///   legitimate user remains.
    ///
    /// [`Domain::quarantine`]: hazard::Domain::quarantine
    pub(crate) fn reap_slot(
        &self,
        p: &mut Participant<'_>,
        victim: usize,
        generation: u64,
        helper: usize,
    ) {
        inject!("kp_hp.reap.adopt");
        let (w0, phase0) = self.state[victim].view(Ordering::SeqCst);
        let was_pending = w0.pending();
        if was_pending {
            Stats::bump(&self.stats.reap_adoptions);
            if w0.enqueue() {
                self.help_enq(p, victim, phase0, helper);
            } else {
                self.help_deq(p, victim, phase0, helper);
            }
        }
        // The L91 wedge (see `WfHpHandle::drop`): tail past any node of
        // the victim's before the descriptor may be blanked.
        self.help_finish_enq(p);
        self.help_finish_deq(p);
        inject!("kp_hp.reap.retire");
        let w1 = self.state[victim].load_ctrl(Ordering::SeqCst);
        if w1.pending() {
            // Lease-contract violation (the "dead" owner republished);
            // leave the slot wedged in `Reaping` — see the epoch twin.
            debug_assert!(false, "victim republished after lease revocation");
            return;
        }
        if self.state[victim].try_retire(w1) {
            // Election won: we alone own the destructive steps.
            if was_pending && !w1.enqueue() && !w1.node_is_null() {
                // Adopted dequeue completed non-empty during this reap;
                // nobody will ever run the owner's epilogue. Claim and
                // discard the value and complete the token gate.
                let node = w1.node_ptr::<NodeHp<T>>();
                // SAFETY (liveness): pending-at-entry means the step-2
                // CAS handed `node` over during this reap, so its
                // CONSUMED token — set only by the completed word's
                // unique owner — is still clear and the gate keeps the
                // node allocated. SAFETY (uniqueness): the try_retire
                // election makes us that unique owner.
                unsafe {
                    let value = (*(*node).value.get()).take();
                    debug_assert!(value.is_some(), "reaped dequeue result already taken");
                    drop(value);
                    let prev = (*node).tokens.fetch_or(TOKEN_CONSUMED, Ordering::AcqRel);
                    if prev & TOKEN_RECLAIM_READY != 0 {
                        // SAFETY: both tokens observed; disposal ours.
                        self.pool().release(node);
                    }
                }
            }
            // The swap prevents a later reap of this slot's next lease
            // from acting on a stale token.
            let token = self.hp_tokens[victim].swap(0, Ordering::SeqCst);
            if token != 0 {
                // SAFETY: the lease revocation poisons the handle (its
                // next op panics in `op_prologue`), and a reaped
                // handle's Drop leaks its record instead of touching
                // it, so no legitimate user of the record remains.
                if unsafe { self.domain.quarantine(token) } {
                    Stats::bump(&self.stats.quarantines);
                }
            }
        }
        inject!("kp_hp.reap.finish");
        if self.ids.finish_reap(victim, generation) {
            Stats::bump(&self.stats.reaps);
        }
    }

    // ------------------------------------------------------------------
    // fast path (bounded lock-free MS loop; see the epoch version and
    // DESIGN.md §12 — only the hazard discipline differs here)
    // ------------------------------------------------------------------

    /// Bounded lock-free enqueue attempt; the HP mirror of
    /// `WfQueue::try_fast_enqueue`. `node` is private to the caller
    /// with `enq_tid == FAST_ENQUEUER`; returns `true` once the append
    /// CAS (the shared L74 linearization point) succeeds, `false` on
    /// budget exhaustion with `node` still private.
    /// `inflight` is the caller's panic-recovery tracker for `node`; it
    /// is cleared here, by the success CAS itself, so an unwind from
    /// the post-publication injection site cannot double-free a node
    /// the queue now owns.
    pub(crate) fn try_fast_enqueue(
        &self,
        p: &mut Participant<'_>,
        node: *mut NodeHp<T>,
        budget: usize,
        inflight: &mut *mut NodeHp<T>,
    ) -> bool {
        // SAFETY: the caller owns `node` exclusively until the append
        // CAS publishes it.
        debug_assert_eq!(unsafe { &*node }.enq_tid, FAST_ENQUEUER);
        for _ in 0..budget {
            inject!("kp_hp.fast.enq");
            let last = p.protect(H_NODE, &*self.tail);
            // SAFETY: protected — as in `help_enq`, a node still
            // reachable as tail cannot be retired or recycled while
            // H_NODE covers it, so its `next` is write-once during the
            // window below.
            let next = unsafe { (*last).next.load(Ordering::SeqCst) };
            if self.tail.load(Ordering::SeqCst) != last {
                continue;
            }
            if next.is_null() {
                // SAFETY: `last` is protected by H_NODE.
                if unsafe {
                    (*last).next.compare_exchange(
                        ptr::null_mut(),
                        node,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    )
                }
                .is_ok()
                {
                    // Linearized (the shared L74 append point); the
                    // node is public — stop tracking it for recovery.
                    *inflight = ptr::null_mut();
                    Stats::bump(&self.stats.appends_total);
                    inject!("kp_hp.fast.swing_tail");
                    // Step 3, best effort; helpers' help_finish_enq
                    // (FAST_ENQUEUER branch) also swings.
                    let _ = self.tail.compare_exchange(
                        last,
                        node,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    );
                    return true;
                }
            } else {
                // Tail lags behind a dangling node: finish that enqueue
                // first (L79–80), preserving a slow append's
                // step-2-before-step-3 order.
                self.help_finish_enq(p);
            }
        }
        false
    }

    /// Test infrastructure — the HP mirror of `WfQueue::append_no_swing`
    /// (see the `#[doc(hidden)]` `WfHpHandle::fast_append_unswung`):
    /// the fast-path append CAS without the step-3 tail swing, the
    /// shared state a sudden death at `kp_hp.fast.swing_tail` leaves
    /// behind. The value is linearized; the lagging tail persists until
    /// someone's `help_finish_enq` fixes it.
    pub(crate) fn append_no_swing(&self, p: &mut Participant<'_>, node: *mut NodeHp<T>) {
        // SAFETY: the caller owns `node` exclusively until the append
        // CAS publishes it.
        debug_assert_eq!(unsafe { &*node }.enq_tid, FAST_ENQUEUER);
        loop {
            let last = p.protect(H_NODE, &*self.tail);
            // SAFETY: protected — as in `try_fast_enqueue`.
            let next = unsafe { (*last).next.load(Ordering::SeqCst) };
            if self.tail.load(Ordering::SeqCst) != last {
                continue;
            }
            if next.is_null() {
                // SAFETY: `last` is protected by H_NODE.
                if unsafe {
                    (*last).next.compare_exchange(
                        ptr::null_mut(),
                        node,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    )
                }
                .is_ok()
                {
                    Stats::bump(&self.stats.appends_total);
                    p.clear(H_NODE);
                    return;
                }
            } else {
                self.help_finish_enq(p);
            }
        }
    }

    /// Bounded lock-free dequeue attempt; the HP mirror of
    /// `WfQueue::try_fast_dequeue`. Locks the sentinel's `deqTid` with
    /// `FAST_DEQUEUER` (the shared L135 linearization point); the value
    /// is taken under the H_NEXT hazard and the value node's token gate
    /// is half-completed here (`TOKEN_CONSUMED`), exactly as the slow
    /// path's owner epilogue would.
    pub(crate) fn try_fast_dequeue(&self, p: &mut Participant<'_>, budget: usize) -> FastDeq<T> {
        for _ in 0..budget {
            inject!("kp_hp.fast.deq");
            let first = p.protect(H_NODE, &*self.head);
            let last = self.tail.load(Ordering::SeqCst);
            // SAFETY: `first` protected; sentinels are retired only
            // after head moves off them, which protect() rules out.
            let next = unsafe { (*first).next.load(Ordering::SeqCst) };
            // Protect `next` before any dereference: while `first` is
            // still the head, `next` cannot have been retired.
            p.set(H_NEXT, next);
            if self.head.load(Ordering::SeqCst) != first {
                p.clear(H_NEXT);
                continue;
            }
            if first == last {
                p.clear(H_NEXT);
                if next.is_null() {
                    // Empty: linearizes at the `next` load above, head-
                    // validated (the L115–120 shape, no descriptor).
                    Stats::bump(&self.stats.empty_dequeues);
                    return FastDeq::Done(None);
                }
                // An enqueue is mid-flight; help it land (L122–123).
                self.help_finish_enq(p);
                continue;
            }
            // SAFETY: `first` is protected by H_NODE.
            let locked = unsafe {
                (*first).deq_tid.compare_exchange(
                    NO_DEQUEUER,
                    FAST_DEQUEUER,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                )
            }
            .is_ok();
            if locked {
                // Step 1 won: the dequeue is linearized and we are the
                // unique taker of the successor's value.
                Stats::bump(&self.stats.locks_total);
                // SAFETY: `next` is covered by H_NEXT, validated while
                // `first` was still the head; the lock's uniqueness
                // gives the value take exclusivity (a node's value is
                // taken exactly once, by whoever locks its
                // predecessor).
                let taken = unsafe { (*(*next).value.get()).take() };
                // Checked in release builds on purpose: an invariant
                // break here (e.g. a reap-path double-take) must panic,
                // never become UB. The branch is perfectly predicted.
                let value =
                    taken.expect("fast-locked sentinel's successor must hold a value");
                // Complete our half of the value node's token gate:
                // when `next` (now the sentinel) is eventually retired,
                // reclamation waits for this CONSUMED bit — the same
                // contract the slow owner's epilogue fulfils.
                // SAFETY: `next` still covered by H_NEXT.
                let prev =
                    unsafe { (*next).tokens.fetch_or(TOKEN_CONSUMED, Ordering::AcqRel) };
                if prev & TOKEN_RECLAIM_READY != 0 {
                    // Unreachable while our hazard stands (the scan
                    // never clears a hazarded node), but the gate's
                    // contract is "whoever observes both bits
                    // releases" — keep it total.
                    // SAFETY: both tokens observed; disposal is ours.
                    unsafe { self.pool().release(next) };
                }
                inject!("kp_hp.fast.swing_head");
                // Step 3, best effort; the winner retires the unlinked
                // sentinel (helpers' FAST_DEQUEUER branch mirrors
                // this).
                if self
                    .head
                    .compare_exchange(first, next, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    self.retire_node(p, first);
                }
                p.clear(H_NEXT);
                return FastDeq::Done(Some(value));
            }
            // Lost the lock to a concurrent dequeue (fast or slow):
            // complete it so head advances, then retry.
            p.clear(H_NEXT);
            self.help_finish_deq(p);
        }
        FastDeq::Exhausted
    }
}

impl<T: Send> ConcurrentQueue<T> for WfQueueHp<T> {
    type Handle<'a>
        = WfHpHandle<'a, T>
    where
        T: 'a;

    fn register(&self) -> Result<Self::Handle<'_>, RegistrationError> {
        match self.ids.acquire() {
            Some(id) => {
                let participant = self.domain.enter();
                // Published before the handle can operate: if this
                // handle dies, a reaper quarantines the record through
                // this token so its hazards stop blocking reclamation.
                self.hp_tokens[id.id()]
                    .store(participant.record_token(), Ordering::SeqCst);
                Ok(WfHpHandle::new(self, id, participant))
            }
            None => Err(RegistrationError {
                capacity: self.max_threads(),
            }),
        }
    }

    fn thread_capacity(&self) -> usize {
        self.max_threads()
    }

    /// Same counter-derived gauge as the epoch engine (see
    /// `WfQueue::depth_hint`): `None` with `stats` off so admission
    /// control disables itself instead of trusting a fake zero.
    fn depth_hint(&self) -> Option<usize> {
        #[cfg(feature = "stats")]
        {
            Some(self.stats.depth())
        }
        #[cfg(not(feature = "stats"))]
        {
            None
        }
    }

    fn drained_hint(&self) -> Option<u64> {
        #[cfg(feature = "stats")]
        {
            Some(self.stats.drained())
        }
        #[cfg(not(feature = "stats"))]
        {
            None
        }
    }

    /// Retire-cache overflows plus the shared pool's over-cap frees —
    /// the same composition as [`WfQueueHp::stats`]. Zero with `stats`
    /// off.
    fn pressure_hint(&self) -> u64 {
        #[cfg(feature = "stats")]
        {
            self.stats.cache_overflows.load(Ordering::Relaxed) + self.pool.overflows()
        }
        #[cfg(not(feature = "stats"))]
        {
            0
        }
    }
}

impl<T> Drop for WfQueueHp<T> {
    fn drop(&mut self) {
        // Exclusive access. Descriptors are in-place slot words —
        // nothing to free. Nodes still in the list drop normally,
        // values included (value ownership is an `Option` in the node
        // now; consumed ones are `None`).
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access; list nodes are owned by the list
            // (retired nodes are owned by the hazard domain, freelist
            // nodes by the pool — both dropped after this body, in that
            // order).
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next.load(Ordering::Relaxed);
        }
    }
}

impl<T: Send> std::fmt::Debug for WfQueueHp<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WfQueueHp")
            .field("max_threads", &self.max_threads())
            .field("config", &self.config)
            .finish()
    }
}
