//! Unit tests for the hazard-pointer (§3.4) queue.

use queue_traits::testing;

use crate::hp::WfQueueHp;
use crate::{Config, ConcurrentQueue, HelpPolicy};

fn all_configs() -> Vec<Config> {
    vec![
        Config::base(),
        Config::opt1(),
        Config::opt2(),
        Config::opt_both(),
        Config::base().with_validation(),
        Config::opt_both().with_validation(),
        Config::opt_both().with_help(HelpPolicy::RandomChunk { chunk: 2 }),
        Config::fast(),
        Config::fast().with_fast_path(1),
    ]
}

#[test]
fn sequential_fifo_all_variants() {
    for cfg in all_configs() {
        let q: WfQueueHp<u64> = WfQueueHp::with_config(4, cfg);
        testing::check_sequential_fifo(&q);
    }
}

#[test]
fn mpmc_conservation_all_variants() {
    for cfg in all_configs() {
        let q: WfQueueHp<u64> = WfQueueHp::with_config(8, cfg);
        testing::check_mpmc_conservation(&q, 4, 4, testing::scaled(2_000));
    }
}

#[test]
fn owned_payloads() {
    for cfg in [Config::base(), Config::opt_both()] {
        let q: WfQueueHp<Box<u64>> = WfQueueHp::with_config(4, cfg);
        testing::check_owned_payloads(&q, 4);
    }
}

#[test]
fn registration_capacity() {
    let q: WfQueueHp<u64> = WfQueueHp::new(3);
    testing::check_registration_capacity(&q, 3);
}

#[test]
fn empty_dequeues() {
    let q: WfQueueHp<u64> = WfQueueHp::with_config(2, Config::base());
    let mut h = q.register().unwrap();
    for _ in 0..5 {
        assert_eq!(h.dequeue(), None);
    }
    h.enqueue(7);
    assert_eq!(h.dequeue(), Some(7));
    assert_eq!(h.dequeue(), None);
    let s = q.stats();
    assert_eq!(s.empty_dequeues, 6);
    assert_eq!(s.dequeues, 7);
}

#[test]
fn values_dropped_exactly_once() {
    use kp_sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    struct CountDrop(Arc<AtomicUsize>);
    impl Drop for CountDrop {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let q: WfQueueHp<CountDrop> = WfQueueHp::new(2);
        let mut h = q.register().unwrap();
        for _ in 0..300 {
            h.enqueue(CountDrop(drops.clone()));
        }
        for _ in 0..120 {
            drop(h.dequeue());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 120, "dequeued values drop");
        drop(h);
    }
    assert_eq!(
        drops.load(Ordering::SeqCst),
        300,
        "resident values drop exactly once at queue drop"
    );
}

#[test]
fn nodes_are_reclaimed_without_gc() {
    // The point of §3.4: memory is reclaimed while the queue runs, not
    // deferred until drop.
    let q: WfQueueHp<u64> = WfQueueHp::new(2);
    let mut h = q.register().unwrap();
    let n = testing::scaled(20_000) as u64;
    for i in 0..n {
        h.enqueue(i);
        assert_eq!(h.dequeue(), Some(i));
    }
    assert!(
        h.reclaimed() > testing::scaled(10_000),
        "hazard scans must have freed nodes/descriptors during the run (got {})",
        h.reclaimed()
    );
}

#[test]
fn string_payloads_roundtrip() {
    let q: WfQueueHp<String> = WfQueueHp::new(2);
    let mut h = q.register().unwrap();
    for i in 0..1_000 {
        h.enqueue(format!("value-{i}"));
        assert_eq!(h.dequeue().as_deref(), Some(format!("value-{i}").as_str()));
    }
}

#[test]
fn lemma_counters_hold() {
    for cfg in [Config::base(), Config::opt_both()] {
        let q: WfQueueHp<u64> = WfQueueHp::with_config(8, cfg);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..testing::scaled(3_000) as u64 {
                        if (t + i) % 3 == 0 {
                            h.dequeue();
                        } else {
                            h.enqueue(t * 100_000 + i);
                        }
                    }
                });
            }
        });
        let stats = q.stats();
        assert_eq!(stats.appends_total, stats.enqueues, "Lemma 1 ({cfg:?})");
        assert_eq!(
            stats.locks_total,
            stats.dequeues - stats.empty_dequeues,
            "Lemma 2 ({cfg:?})"
        );
        let resident = (stats.enqueues - (stats.dequeues - stats.empty_dequeues)) as usize;
        assert_eq!(q.len_approx_quiescent(), resident);
    }
}

#[test]
fn helping_occurs_under_contention() {
    // Bounded rounds: see the epoch variant's test for why one round
    // can, rarely, finish without any operation overlap.
    let q: WfQueueHp<u64> = WfQueueHp::with_config(8, Config::base());
    let mut rounds = 0u64;
    while rounds < 10 {
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut h = q.register().unwrap();
                    for i in 0..testing::scaled(10_000) as u64 {
                        h.enqueue(i);
                        h.dequeue();
                    }
                });
            }
        });
        rounds += 1;
        if q.stats().help_calls > 0 {
            break;
        }
    }
    let stats = q.stats();
    assert_eq!(stats.ops(), rounds * 8 * 2 * testing::scaled(10_000) as u64);
    assert!(
        stats.help_calls > 0,
        "base policy must help peers under contention: {stats:?}"
    );
}

#[test]
fn fast_path_uncontended_ops_never_fall_back() {
    // Mirror of the epoch test: single-threaded, no contention, so the
    // hazard-pointer fast path completes every op and reclamation (the
    // token gate + hazard scan) still runs.
    let q: WfQueueHp<u64> = WfQueueHp::with_config(4, Config::fast());
    let mut h = q.register().unwrap();
    for i in 0..500 {
        h.enqueue(i);
        assert_eq!(h.dequeue(), Some(i), "fast path must preserve FIFO");
    }
    assert_eq!(h.dequeue(), None);
    let fp = h.fast_path_stats();
    assert_eq!(fp.fast_completions, 1001, "500 enq + 500 deq + 1 empty deq");
    assert_eq!(fp.slow_ops, 0);
    let stats = q.stats();
    assert_eq!(stats.appends_total, stats.enqueues);
    assert_eq!(stats.locks_total, stats.dequeues - stats.empty_dequeues);
}

#[test]
fn fast_path_values_dropped_exactly_once() {
    // The fast dequeue takes the value and half-completes the token
    // gate itself; nothing may be dropped twice or leaked.
    use kp_sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    struct CountDrop(Arc<AtomicUsize>);
    impl Drop for CountDrop {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let q: WfQueueHp<CountDrop> = WfQueueHp::with_config(2, Config::fast());
        let mut h = q.register().unwrap();
        for _ in 0..300 {
            h.enqueue(CountDrop(drops.clone()));
        }
        for _ in 0..120 {
            drop(h.dequeue());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 120);
        drop(h);
    }
    assert_eq!(drops.load(Ordering::SeqCst), 300, "no double drop, no leak");
}

#[test]
fn mixed_fast_and_slow_handles_conserve_values() {
    let q: WfQueueHp<u64> = WfQueueHp::with_config(8, Config::fast().with_fast_path(2));
    let per = testing::scaled(3_000) as u64;
    let total = std::sync::Mutex::new(0u64);
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let q = &q;
            let total = &total;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                if t % 2 == 0 {
                    h.set_fast_path(0); // slow-only
                }
                let mut sum = 0u64;
                for i in 0..per {
                    h.enqueue(t * per + i);
                    if let Some(v) = h.dequeue() {
                        sum += v;
                    }
                }
                if t % 2 == 0 {
                    assert_eq!(h.fast_path_stats().fast_completions, 0);
                }
                *total.lock().unwrap() += sum;
            });
        }
    });
    let mut rest = 0u64;
    let mut h = q.register().unwrap();
    while let Some(v) = h.dequeue() {
        rest += v;
    }
    let expect: u64 = (0..8 * per).sum();
    assert_eq!(*total.lock().unwrap() + rest, expect, "values conserved");
    let stats = q.stats();
    assert_eq!(stats.appends_total, stats.enqueues, "Lemma 1 (mixed)");
    assert_eq!(
        stats.locks_total,
        stats.dequeues - stats.empty_dequeues,
        "Lemma 2 (mixed)"
    );
}

#[test]
fn fast_path_nodes_still_reclaimed() {
    // The fast dequeue's retire path must feed the same pool as the
    // slow one: long runs stay allocation-bounded.
    let q: WfQueueHp<u64> = WfQueueHp::with_config(2, Config::fast());
    let mut h = q.register().unwrap();
    let n = testing::scaled(20_000) as u64;
    for i in 0..n {
        h.enqueue(i);
        assert_eq!(h.dequeue(), Some(i));
    }
    let s = q.stats();
    assert!(
        s.node_allocs < 200,
        "fast path must recycle nodes, not allocate per op (allocs={})",
        s.node_allocs
    );
}

#[test]
fn debug_format() {
    let q: WfQueueHp<u64> = WfQueueHp::new(2);
    assert!(format!("{q:?}").contains("WfQueueHp"));
}

/// Overload gauges on the hazard-pointer engine: same counter-derived
/// contract as the epoch engine.
#[cfg(feature = "stats")]
#[test]
fn depth_hint_tracks_residency_at_quiescence() {
    let q: WfQueueHp<u64> = WfQueueHp::new(2);
    assert_eq!(q.depth_hint(), Some(0));
    let mut h = q.register().unwrap();
    for i in 0..8 {
        h.enqueue(i);
    }
    assert_eq!(q.depth_hint(), Some(8));
    for _ in 0..8 {
        h.dequeue().unwrap();
    }
    assert_eq!(h.dequeue(), None);
    assert_eq!(q.depth_hint(), Some(0));
    assert_eq!(q.drained_hint(), Some(8));
    assert_eq!(q.capacity_hint(), None, "unbounded engine");
}
