//! The wait-free queue with **hazard-pointer** memory management —
//! the paper's §3.4, implemented in full.
//!
//! The epoch-based [`WfQueue`](crate::WfQueue) matches the paper's Java
//! presentation (which leans on the GC), but epoch reclamation is only
//! lock-free: one stalled thread can stall *all* reclamation. §3.4
//! prescribes Michael's hazard pointers to make memory management
//! wait-free too. [`WfQueueHp`] keeps nodes retired as soon as `head`
//! passes them (end of `help_finish_deq`), exactly as §3.4 wants.
//!
//! ## Descriptors are words, not objects
//!
//! Like the epoch variant, `state[tid]` is an in-place packed
//! [`StateSlot`](crate::desc::StateSlot) — a version-tagged control
//! word plus a phase word — instead of a pointer to a heap `OpDesc`.
//! For the HP variant this is a double win: the hot path stops
//! allocating *and* the descriptor hazard slot (with its
//! protect/validate dance on every descriptor read) disappears, because
//! a one-word atomic load has no lifetime to protect. Only two hazard
//! slots per thread remain:
//!
//! | slot | protects |
//! |---|---|
//! | 0 | the `head`/`tail` node an operation is working on |
//! | 1 | that node's successor (validated via a `head`/`tail` re-read: while the anchor is still in place, the successor cannot have been retired) |
//!
//! ## The node hand-off (replacing §3.4's value field)
//!
//! §3.4 suggests couriering the dequeued *value* inside the descriptor
//! so the owner never touches retired nodes. A packed word cannot carry
//! a `T`, so the completed dequeue word instead points at the **value
//! node** (the new sentinel, `first.next`), and the owner dereferences
//! it *without* a hazard slot, made safe by a two-token disposal gate
//! on every node (`tokens`): a node is released — to the reuse pool or
//! the allocator — only after (a) the hazard scan found it uncovered
//! ([`TOKEN_RECLAIM_READY`](types::TOKEN_RECLAIM_READY)) *and* (b) its
//! dequeue owner took the value ([`TOKEN_CONSUMED`](types::TOKEN_CONSUMED)).
//! Each side sets its token with an `AcqRel` `fetch_or`; whichever
//! observes the other's bit performs the release, exactly once. Since
//! (b) is executed by the owner itself, the owner's epilogue dereference
//! can never race with the node's disposal.
//!
//! If a thread dies between its dequeue's completion and its epilogue,
//! the value node stays in limbo: one node + one value leak per killed
//! thread, the same bounded kill-window loss the torture suite's
//! conservation check already budgets for (`allowed_missing`). A panic
//! that unwinds through `dequeue` does *not* leak — the handle's `Drop`
//! claims the unclaimed result (see `deq_in_flight`).
//!
//! ## Node reuse
//!
//! Disposal feeds `hp::pool`: a shared steal-all freelist plus a
//! per-handle cache, making steady-state HP operations allocation-free
//! just like the epoch variant's `RetireCache`. With
//! `Config::reuse_nodes` off, disposal falls through to the allocator —
//! the ablation baseline.

mod handle;
mod pool;
mod queue;
mod types;

pub use handle::{PendingOpHp, WfHpHandle};
pub use queue::WfQueueHp;

#[cfg(test)]
mod tests;
