//! The wait-free queue with **hazard-pointer** memory management —
//! the paper's §3.4, implemented in full.
//!
//! The epoch-based [`WfQueue`](crate::WfQueue) matches the paper's Java
//! presentation (which leans on the GC), but epoch reclamation is only
//! lock-free: one stalled thread can stall *all* reclamation. §3.4
//! prescribes Michael's hazard pointers to make memory management
//! wait-free too, and sketches the one algorithmic change required:
//!
//! > "we need to add a field into the operation descriptor records to
//! > hold a value removed from the queue (and not just a reference to
//! > the sentinel through which this value can be located)"
//!
//! [`WfQueueHp`] implements exactly that: when a helper completes a
//! dequeue (the `pending → false` descriptor transition, paper L148–149),
//! it copies the dequeued value *into the new descriptor*, so the
//! operation's owner reads its result from its own (hazard-protected)
//! descriptor and never touches queue nodes after they may have been
//! retired. Nodes are retired as soon as `head` passes them (end of
//! `help_finish_deq`), exactly as §3.4 wants.
//!
//! ## Hazard discipline
//!
//! Three slots per thread:
//!
//! | slot | protects |
//! |---|---|
//! | 0 | the `head`/`tail` node an operation is working on |
//! | 1 | that node's successor (validated via a `head`/`tail` re-read: while the anchor is still in place, the successor cannot have been retired) |
//! | 2 | the operation descriptor currently being read |
//!
//! ## Value-ownership protocol
//!
//! Values never *move out of* nodes (no node field is ever mutated after
//! publication, so helper reads race with nothing). Instead, ownership
//! is transferred by `ptr::read` copies along a chain with exactly one
//! live end: node → the unique winning completion descriptor → the
//! owner's return value. Every other bitwise copy sits in a
//! `ManuallyDrop` and is deliberately never dropped:
//!
//! * node drops never drop the value of a node that became a sentinel
//!   (its value's ownership moved to a descriptor when its predecessor
//!   was dequeued);
//! * descriptor drops never drop values (the owner's `deq()` has taken
//!   it — our API guarantees every operation's epilogue runs);
//! * the queue's `Drop` manually drops the values of resident
//!   non-sentinel nodes, the only copies still owned by the structure.

mod handle;
mod queue;
mod types;

pub use handle::WfHpHandle;
pub use queue::WfQueueHp;

#[cfg(test)]
mod tests;
