//! Per-thread handle of the hazard-pointer queue: operation entry
//! points (Figure 4 `enq` / Figure 6 `deq`) and the §3.3 helping-policy
//! dispatch, mirroring `crate::handle`.

use std::mem::ManuallyDrop;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::ptr;
use kp_sync::atomic::Ordering;

use hazard::Participant;
use idpool::{IdGuard, SlotState};
use queue_traits::{FastPathStats, QueueHandle};

use crate::chaos_hooks::{self, inject};
use crate::config::HelpPolicy;
use crate::hp::queue::WfQueueHp;
use crate::hp::types::{
    NodeHp, FAST_ENQUEUER, H_NEXT, H_NODE, NO_DEQUEUER, TOKEN_CONSUMED, TOKEN_RECLAIM_READY,
};
use crate::queue::FastDeq;
use crate::reap::{Observation, ReapScan};
use crate::stats::Stats;

/// Nodes kept in the handle's private cache; surplus from a freelist
/// steal goes back to the shared pool.
const LOCAL_CAP: usize = 32;

/// A registered thread's handle to a [`WfQueueHp`].
///
/// Owns the thread's virtual ID, its hazard-pointer record, *and* a
/// private node cache: enqueues allocate from it, refilling by stealing
/// the queue's shared freelist, so the steady-state operation path
/// performs zero heap allocations — the HP counterpart of the epoch
/// handle's `RetireCache`.
///
/// As with [`WfHandle`](crate::WfHandle), dropping the handle while its
/// operation is still pending completes the operation and leaves a
/// fresh idle descriptor behind (§3.3 "dummy descriptor on exit")
/// before the ID and the hazard record are released.
pub struct WfHpHandle<'q, T: Send> {
    queue: &'q WfQueueHp<T>,
    id: IdGuard<'q>,
    /// Manually dropped so `Drop` can *leak* the record when the handle
    /// was reaped: the reaper already quarantined it (slots nulled,
    /// parked for adoption), and a successor may have adopted it —
    /// running `Participant::drop` then would clobber the adopter's
    /// live hazards.
    participant: ManuallyDrop<Participant<'q>>,
    cursor: usize,
    rng: u64,
    /// Private node cache (see `hp::pool`). Pre-sized so pushes never
    /// allocate.
    local: Vec<*mut NodeHp<T>>,
    /// True from a dequeue's publish until its epilogue claimed the
    /// result. Lets `Drop` (after a panic unwound out of `dequeue`)
    /// distinguish a completed-but-unclaimed word — whose value node
    /// must still be consumed to finish its token gate — from an old
    /// word whose result was already taken (re-claiming that one could
    /// steal a *recycled* node's fresh value).
    deq_in_flight: bool,
    /// Fast-path CAS-failure budget; copied from the queue config,
    /// overridable per handle (see [`set_fast_path`]). `0` = slow only.
    ///
    /// [`set_fast_path`]: Self::set_fast_path
    max_fast_failures: usize,
    /// Consecutive fast-path completions since the last starvation
    /// peek (see `Config::starvation_patience`).
    fast_streak: usize,
    /// Plain (non-atomic, handle-local) fast/slow counters — always
    /// collected, unlike the feature-gated shared `Stats`.
    local_stats: FastPathStats,
    /// Panic-recovery tracker for a still-private fast-path node — the
    /// HP twin of `WfHandle::inflight`; nulled the instant the node is
    /// published.
    inflight: *mut NodeHp<T>,
    /// Reaper scan state (cursor + freeze detector, DESIGN.md §13).
    reap: ReapScan,
}

// SAFETY: the raw pointers in `local` are nodes exclusively owned by
// this handle (released through the token gate before they entered a
// pool, stolen/popped from there); moving the handle moves that
// ownership. Everything else is `Send` on its own.
unsafe impl<T: Send> Send for WfHpHandle<'_, T> {}

impl<'q, T: Send> WfHpHandle<'q, T> {
    pub(crate) fn new(queue: &'q WfQueueHp<T>, id: IdGuard<'q>, participant: Participant<'q>) -> Self {
        let tid = id.id();
        WfHpHandle {
            queue,
            id,
            participant: ManuallyDrop::new(participant),
            cursor: (tid + 1) % queue.max_threads(),
            rng: 0x9E37_79B9_7F4A_7C15 ^ ((tid as u64 + 1) << 17),
            local: Vec::with_capacity(LOCAL_CAP),
            deq_in_flight: false,
            max_fast_failures: queue.config().max_fast_failures,
            fast_streak: 0,
            local_stats: FastPathStats::default(),
            inflight: ptr::null_mut(),
            reap: ReapScan::new(
                (tid + 1) % queue.max_threads(),
                queue.config.reap_min_silence_ms,
            ),
        }
    }

    /// Overrides this handle's fast-path CAS-failure budget (the queue
    /// config's `max_fast_failures` is every handle's default). `0`
    /// pins the handle to the wait-free slow path. Lets tests and
    /// benches mix fast-path and slow-only handles on one queue.
    pub fn set_fast_path(&mut self, max_fast_failures: usize) {
        self.max_fast_failures = max_fast_failures;
    }

    /// This handle's fast/slow execution counters (always collected,
    /// independent of the `stats` cargo feature).
    pub fn fast_path_stats(&self) -> FastPathStats {
        self.local_stats
    }

    /// This handle's virtual thread ID.
    pub fn tid(&self) -> usize {
        self.id.id()
    }

    /// The queue this handle operates on.
    pub fn queue(&self) -> &'q WfQueueHp<T> {
        self.queue
    }

    /// Objects reclaimed so far through this handle's hazard record
    /// (diagnostics; proves reclamation happens without a GC).
    pub fn reclaimed(&self) -> usize {
        self.participant.reclaimed()
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A node ready to carry `value`: recycled from the private cache or
    /// the shared freelist when possible, freshly allocated otherwise.
    fn alloc_node(&mut self, value: T, tid: usize) -> *mut NodeHp<T> {
        let node = match self.local.pop() {
            Some(n) => n,
            None => match self.steal_batch() {
                Some(n) => n,
                None => {
                    Stats::bump(&self.queue.stats.node_allocs);
                    return NodeHp::boxed(Some(value), tid);
                }
            },
        };
        Stats::bump(&self.queue.stats.node_reuses);
        // SAFETY: pooled nodes are exclusively owned (both disposal
        // tokens were observed before release — see `hp::pool`). The
        // SeqCst publish that follows in the caller releases these
        // plain/Relaxed writes to any helper reading the node through
        // the descriptor word.
        unsafe {
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
            (*node).deq_tid.store(NO_DEQUEUER, Ordering::Relaxed);
            (*node).tokens.store(0, Ordering::Relaxed);
            (*node).enq_tid = tid;
            *(*node).value.get() = Some(value);
        }
        node
    }

    /// Steals the shared freelist; keeps up to [`LOCAL_CAP`] nodes,
    /// returns one, and gives any surplus back to the pool.
    fn steal_batch(&mut self) -> Option<*mut NodeHp<T>> {
        let first = self.queue.pool().steal();
        if first.is_null() {
            return None;
        }
        // SAFETY: a stolen list is exclusively ours (see `NodePool`).
        let mut cur = unsafe { (*first).free_next.load(Ordering::Relaxed) };
        while !cur.is_null() {
            // SAFETY: as above.
            let nxt = unsafe { (*cur).free_next.load(Ordering::Relaxed) };
            if self.local.len() < LOCAL_CAP {
                self.local.push(cur);
            } else {
                // SAFETY: exclusively ours; hand it back for other
                // threads' refills.
                unsafe { self.queue.pool().release(cur) };
            }
            cur = nxt;
        }
        Some(first)
    }

    /// §3.3 helping-policy dispatch followed by driving our own op.
    fn run_help(&mut self, phase: i64, enqueue: bool) {
        let q = self.queue;
        let tid = self.id.id();
        let n = q.max_threads();
        match q.config().help {
            HelpPolicy::ScanAll => q.help_all(&mut self.participant, phase, tid),
            HelpPolicy::Cyclic { chunk } => {
                for j in 0..chunk.min(n) {
                    let i = (self.cursor + j) % n;
                    if i != tid {
                        q.help_index(&mut self.participant, i, phase, tid);
                    }
                }
                self.cursor = (self.cursor + chunk) % n;
            }
            HelpPolicy::RandomChunk { chunk } => {
                let start = (self.next_rand() % n as u64) as usize;
                for j in 0..chunk.min(n) {
                    let i = (start + j) % n;
                    if i != tid {
                        q.help_index(&mut self.participant, i, phase, tid);
                    }
                }
            }
        }
        if enqueue {
            q.help_enq(&mut self.participant, tid, phase, tid);
        } else {
            q.help_deq(&mut self.participant, tid, phase, tid);
        }
    }

    /// True when this operation must skip the fast path because a
    /// peer's descriptor has been pending while we kept winning it.
    /// Mirrors `WfHandle::starvation_peek` — see there for the rationale
    /// and the SeqCst justification.
    fn starvation_peek(&mut self) -> bool {
        let q = self.queue;
        let patience = q.config().starvation_patience;
        if patience == 0 || self.fast_streak < patience {
            return false;
        }
        self.fast_streak = 0;
        let n = q.max_threads();
        if self.cursor == self.id.id() {
            // Our own slot cannot starve us; rotate and stay fast.
            self.cursor = (self.cursor + 1) % n;
            return false;
        }
        // SeqCst: gates a helping obligation, like `is_still_pending`.
        let (w, _) = q.state[self.cursor].view(Ordering::SeqCst);
        if w.pending() {
            true
        } else {
            self.cursor = (self.cursor + 1) % n;
            false
        }
    }

    /// Operation prologue: the reaper-protocol obligations of a live
    /// owner (DESIGN.md §13) — mirrors `WfHandle::op_prologue`, minus
    /// the token publication (the hazard record's token was published
    /// at registration and never changes).
    ///
    /// # Panics
    ///
    /// Panics if this handle's lease was revoked by a reaper.
    #[inline]
    fn op_prologue(&mut self) {
        let q = self.queue;
        if q.config.reap_patience == 0 {
            return;
        }
        assert!(
            self.id.lease_holds(),
            "kp-queue handle reaped: the handle stayed silent past the lease \
             patience window and its virtual ID was revoked (DESIGN.md §13)"
        );
        q.state[self.id.id()].bump_beat();
    }

    /// Signals liveness without performing an operation — see
    /// [`WfHandle::keepalive`](crate::WfHandle::keepalive).
    ///
    /// # Panics
    ///
    /// Panics if the lease was already revoked.
    pub fn keepalive(&mut self) {
        self.op_prologue();
    }

    /// `enq(value)`, L61–66, preceded by the bounded fast path when
    /// enabled (DESIGN.md §12).
    ///
    /// # Panic safety
    ///
    /// Unwind-guarded like `WfHandle::enqueue`: a panic escaping the
    /// protocol completes the published operation, reclaims any
    /// still-private node, clears the hazard slots, and leaves the
    /// handle usable before resuming.
    pub fn enqueue(&mut self, value: T) {
        chaos_hooks::op_begin();
        self.op_prologue();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if self.max_fast_failures > 0 {
                self.enqueue_fast_first(value);
            } else {
                self.slow_enqueue(value);
            }
            self.reap_tick();
        }));
        match result {
            Ok(()) => chaos_hooks::op_end(),
            // op_end deliberately not called: a killed operation's
            // partial step count must not be reported.
            Err(payload) => {
                self.recover_after_unwind();
                resume_unwind(payload);
            }
        }
    }

    /// The fast prologue and its demotion edges, out of line
    /// (`#[inline(never)]`) for the same codegen reason as
    /// `WfHandle::enqueue_fast_first`: inlining it into the entry point
    /// perturbed slow-only codegen.
    #[inline(never)]
    fn enqueue_fast_first(&mut self, value: T) {
        let q = self.queue;
        let tid = self.id.id();
        if !self.starvation_peek() {
            let node = self.alloc_node(value, FAST_ENQUEUER);
            // Track the private node for panic recovery until it is
            // published; the tracker itself is passed down so the
            // clear is not lost if an unwind escapes after the
            // publishing CAS.
            self.inflight = node;
            let budget = self.max_fast_failures;
            let (participant, inflight) = (&mut self.participant, &mut self.inflight);
            if q.try_fast_enqueue(participant, node, budget, inflight) {
                self.fast_streak += 1;
                self.local_stats.fast_completions += 1;
                Stats::bump(&q.stats.fast_completions);
                Stats::bump(&q.stats.enqueues);
                return;
            }
            // Exhausted: every append CAS failed, so the node was
            // never published — still exclusively ours. Rebrand it
            // with our real tid and fall back to the slow path.
            self.fast_streak = 0;
            self.local_stats.fast_exhaustions += 1;
            Stats::bump(&q.stats.fast_exhaustions);
            // SAFETY: exclusive ownership (see above); helpers only
            // read `enq_tid` after the descriptor publish below,
            // whose SeqCst store releases this write.
            unsafe { (*node).enq_tid = tid };
            inject!("kp_hp.fast.demote");
            self.local_stats.slow_ops += 1;
            let phase = q.next_phase(); // L62
            self.slow_enqueue_publish(phase, node);
            return;
        }
        self.local_stats.fast_starvation_demotions += 1;
        Stats::bump(&q.stats.fast_starvation_demotions);
        // Demote to the slow path, which helps the starved peer (its
        // slot is at our help cursor).
        self.slow_enqueue(value);
    }

    /// The slow path proper: L61–66 with a freshly prepared node.
    fn slow_enqueue(&mut self, value: T) {
        let q = self.queue;
        let tid = self.id.id();
        self.local_stats.slow_ops += 1;
        let phase = q.next_phase(); // L62
        // Before the node is prepared, so a simulated crash here leaks
        // nothing (the value is dropped by the unwind).
        inject!("kp_hp.publish");
        let node = self.alloc_node(value, tid);
        self.slow_enqueue_publish(phase, node);
    }

    /// L63–65: publish the prepared node's descriptor and drive the
    /// enqueue to completion (shared by the slow path proper and the
    /// fast-path demotion).
    fn slow_enqueue_publish(&mut self, phase: i64, node: *mut NodeHp<T>) {
        let q = self.queue;
        let tid = self.id.id();
        // L63: publish the operation descriptor — an in-place slot
        // store, not an allocation.
        q.state[tid].publish(phase, node as usize, true);
        // Published: recovery now completes the operation through the
        // descriptor instead of reclaiming the node.
        self.inflight = ptr::null_mut();
        self.run_help(phase, true); // L64
        q.help_finish_enq(&mut self.participant); // L65
        Stats::bump(&q.stats.enqueues);
    }

    /// `deq()`, L98–108, preceded by the bounded fast path when enabled
    /// (DESIGN.md §12). `None` where the paper throws `EmptyException`.
    ///
    /// # Panic safety
    ///
    /// Unwind-guarded exactly like [`enqueue`](Self::enqueue).
    pub fn dequeue(&mut self) -> Option<T> {
        chaos_hooks::op_begin();
        self.op_prologue();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let result = if self.max_fast_failures > 0 {
                self.dequeue_fast_first()
            } else {
                self.slow_dequeue()
            };
            self.reap_tick();
            result
        }));
        match result {
            Ok(result) => {
                chaos_hooks::op_end();
                result
            }
            Err(payload) => {
                self.recover_after_unwind();
                resume_unwind(payload);
            }
        }
    }

    /// The fast prologue and its demotion edges; out of line for the
    /// same codegen reason as [`enqueue_fast_first`].
    ///
    /// [`enqueue_fast_first`]: Self::enqueue_fast_first
    #[inline(never)]
    fn dequeue_fast_first(&mut self) -> Option<T> {
        let q = self.queue;
        if !self.starvation_peek() {
            let budget = self.max_fast_failures;
            match q.try_fast_dequeue(&mut self.participant, budget) {
                FastDeq::Done(result) => {
                    self.fast_streak += 1;
                    self.local_stats.fast_completions += 1;
                    Stats::bump(&q.stats.fast_completions);
                    Stats::bump(&q.stats.dequeues);
                    return result;
                }
                FastDeq::Exhausted => {
                    self.fast_streak = 0;
                    self.local_stats.fast_exhaustions += 1;
                    Stats::bump(&q.stats.fast_exhaustions);
                    inject!("kp_hp.fast.demote");
                }
            }
        } else {
            self.local_stats.fast_starvation_demotions += 1;
            Stats::bump(&q.stats.fast_starvation_demotions);
        }
        self.slow_dequeue()
    }

    /// The slow path proper: L98–108.
    fn slow_dequeue(&mut self) -> Option<T> {
        let q = self.queue;
        let tid = self.id.id();
        self.local_stats.slow_ops += 1;
        let phase = q.next_phase(); // L99
        inject!("kp_hp.publish");
        // L100: publish the operation descriptor (node = null).
        q.state[tid].publish(phase, 0, false);
        self.deq_in_flight = true;
        self.run_help(phase, false); // L101
        q.help_finish_deq(&mut self.participant); // L102
        Stats::bump(&q.stats.dequeues);
        // L103–107: read the result through our completed word.
        let result = Self::read_deq_result(q, tid);
        self.deq_in_flight = false;
        result
    }

    /// The L103–107 epilogue, node-hand-off edition: our completed word
    /// points at the *value node* (the sentinel that replaced the one
    /// our dequeue locked). Acquire suffices for the view — the same
    /// own-slot coherence argument as the epoch version — and the
    /// dereference needs no hazard slot: the token gate keeps the node
    /// allocated until *we* set [`TOKEN_CONSUMED`], however long ago the
    /// operation completed and the node was retired.
    fn read_deq_result(q: &WfQueueHp<T>, tid: usize) -> Option<T> {
        let (w, _) = q.state[tid].view(Ordering::Acquire);
        debug_assert!(!w.pending(), "own op must be complete");
        debug_assert!(!w.enqueue(), "descriptor must be our dequeue");
        if w.node_is_null() {
            Stats::bump(&q.stats.empty_dequeues);
            return None; // L104–105: linearized on an empty queue
        }
        let node = w.node_ptr::<NodeHp<T>>();
        // SAFETY (liveness): `node` cannot be freed or recycled before
        // both tokens are observed, and CONSUMED is set only on the line
        // below — by us, the unique owner of this completed dequeue.
        // SAFETY (value uniqueness): the step-2 CAS wrote `node` into
        // exactly one completed dequeue word (version tags make racing
        // step-2 writers idempotent, not duplicating), and only that
        // word's owner takes the value. The enqueuer's value write
        // happens-before via the SeqCst publish/append/step-2 chain and
        // our Acquire view.
        unsafe {
            let v = (*(*node).value.get()).take();
            let prev = (*node).tokens.fetch_or(TOKEN_CONSUMED, Ordering::AcqRel);
            if prev & TOKEN_RECLAIM_READY != 0 {
                // The hazard scan already cleared the node; disposal is
                // ours (see `hp::pool::reclaim_into_pool`).
                q.pool().release(node);
            }
            // Checked in release builds on purpose: a reap-path
            // claim-and-discard racing a falsely-reaped owner's
            // epilogue must panic here, never become UB. The branch is
            // perfectly predicted.
            Some(v.expect("completed dequeue carries a value"))
        }
    }

    /// One step of the abandoned-handle reaper (DESIGN.md §13), run
    /// after every [`TICK_STRIDE`](crate::reap::TICK_STRIDE)-th
    /// completed operation when `Config::reap_patience > 0`.
    /// Mirrors `WfHandle::reap_tick`; bounded work, so the enclosing
    /// operation stays wait-free.
    fn reap_tick(&mut self) {
        let q = self.queue;
        let patience = q.config.reap_patience;
        if patience == 0 || !self.reap.tick_due() {
            return;
        }
        let tid = self.id.id();
        let n = q.max_threads();
        let v = self.reap.cursor();
        if v == tid {
            self.reap.advance(n);
            return;
        }
        let Some(view) = q.ids.inspect(v) else {
            self.reap.advance(n);
            return;
        };
        match view.state {
            SlotState::Free => self.reap.advance(n),
            SlotState::Claimed => {
                let (ctrl, phase) = q.state[v].view(Ordering::SeqCst);
                let obs = Observation::Claimed {
                    generation: view.generation,
                    beat: q.state[v].load_beat(),
                    ctrl,
                    phase,
                };
                if self.reap.frozen(obs, patience) {
                    if q.ids.begin_reap(v, view.generation) {
                        q.reap_slot(&mut self.participant, v, view.generation, tid);
                    }
                    self.reap.advance(n);
                }
            }
            SlotState::Reaping => {
                let obs = Observation::Reaping {
                    generation: view.generation,
                };
                if self.reap.frozen(obs, patience) {
                    if let Some(next_generation) = q.ids.takeover_reap(v, view.generation) {
                        Stats::bump(&q.stats.reap_takeovers);
                        q.reap_slot(&mut self.participant, v, next_generation, tid);
                    }
                    self.reap.advance(n);
                }
            }
        }
    }

    /// Restores the handle's invariants after a panic escaped from
    /// inside `enqueue`/`dequeue` — the HP twin of
    /// `WfHandle::recover_after_unwind`, plus clearing the hazard
    /// slots an unwind may have left set (a stale hazard would exclude
    /// its node from reclamation forever).
    #[cold]
    fn recover_after_unwind(&mut self) {
        let q = self.queue;
        let tid = self.id.id();
        let inflight = std::mem::replace(&mut self.inflight, ptr::null_mut());
        if !inflight.is_null() {
            // SAFETY: non-null tracker ⇒ the node was never published
            // (append CAS and descriptor publish both clear it), so we
            // are its unique owner; nodes are boxed at birth
            // (`NodeHp::boxed`) and its value drops with it.
            drop(unsafe { Box::from_raw(inflight) });
        }
        let (w, phase) = q.state[tid].view(Ordering::SeqCst);
        if w.pending() {
            if w.enqueue() {
                q.help_enq(&mut self.participant, tid, phase, tid);
            } else {
                q.help_deq(&mut self.participant, tid, phase, tid);
                q.help_finish_deq(&mut self.participant);
                // Claim and discard: completes the value node's token
                // gate, which would otherwise never close.
                drop(Self::read_deq_result(q, tid));
            }
        } else if !w.enqueue() && self.deq_in_flight {
            drop(Self::read_deq_result(q, tid));
        }
        self.deq_in_flight = false;
        q.help_finish_enq(&mut self.participant);
        q.help_finish_deq(&mut self.participant);
        self.participant.clear(H_NODE);
        self.participant.clear(H_NEXT);
        self.fast_streak = 0;
    }

    /// Begins an operation but performs **no helping**, leaving the
    /// published descriptor pending — the HP twin of
    /// [`WfHandle::begin_enqueue_unhelped`]. Test infrastructure for
    /// exercising helping and reaping deterministically.
    ///
    /// [`WfHandle::begin_enqueue_unhelped`]:
    ///     crate::WfHandle::begin_enqueue_unhelped
    #[doc(hidden)]
    pub fn begin_enqueue_unhelped(&mut self, value: T) -> PendingOpHp<'_, 'q, T> {
        let q = self.queue;
        let tid = self.id.id();
        let phase = q.next_phase();
        let node = self.alloc_node(value, tid);
        q.state[tid].publish(phase, node as usize, true);
        PendingOpHp {
            handle: self,
            phase,
            enqueue: true,
            done: false,
        }
    }

    /// Dequeue counterpart of [`begin_enqueue_unhelped`].
    ///
    /// [`begin_enqueue_unhelped`]: Self::begin_enqueue_unhelped
    #[doc(hidden)]
    pub fn begin_dequeue_unhelped(&mut self) -> PendingOpHp<'_, 'q, T> {
        let q = self.queue;
        let tid = self.id.id();
        let phase = q.next_phase();
        q.state[tid].publish(phase, 0, false);
        PendingOpHp {
            handle: self,
            phase,
            enqueue: false,
            done: false,
        }
    }

    /// Performs a fast-path append and **skips the tail swing** — the
    /// HP twin of `WfHandle::fast_append_unswung`: the shared state a
    /// sudden death at `kp_hp.fast.swing_tail` leaves behind. The value
    /// is linearized; the lagging tail makes the next budget-1 fast
    /// enqueue demote deterministically. Test infrastructure, like
    /// [`begin_enqueue_unhelped`].
    ///
    /// [`begin_enqueue_unhelped`]: Self::begin_enqueue_unhelped
    #[doc(hidden)]
    pub fn fast_append_unswung(&mut self, value: T) {
        let q = self.queue;
        self.op_prologue();
        let node = self.alloc_node(value, FAST_ENQUEUER);
        q.append_no_swing(&mut self.participant, node);
    }
}

/// An in-flight operation started by
/// [`WfHpHandle::begin_enqueue_unhelped`] or
/// [`WfHpHandle::begin_dequeue_unhelped`] — the HP twin of
/// [`PendingOp`](crate::PendingOp). No guard field: hazard pointers
/// protect per-dereference, not per-scope.
#[doc(hidden)]
pub struct PendingOpHp<'h, 'q, T: Send> {
    handle: &'h mut WfHpHandle<'q, T>,
    phase: i64,
    enqueue: bool,
    done: bool,
}

impl<T: Send> PendingOpHp<'_, '_, T> {
    /// True while the operation has not been linearized-and-acknowledged
    /// by anyone (owner or helper).
    pub fn is_pending(&self) -> bool {
        self.handle
            .queue
            .is_still_pending(self.handle.tid(), self.phase)
    }

    /// The phase number the operation was published with.
    pub fn phase(&self) -> i64 {
        self.phase
    }

    fn complete(&mut self) -> Option<T> {
        debug_assert!(!self.done);
        self.done = true;
        let q = self.handle.queue;
        let tid = self.handle.id.id();
        if self.enqueue {
            q.help_enq(&mut self.handle.participant, tid, self.phase, tid);
            q.help_finish_enq(&mut self.handle.participant);
            Stats::bump(&q.stats.enqueues);
            None
        } else {
            q.help_deq(&mut self.handle.participant, tid, self.phase, tid);
            q.help_finish_deq(&mut self.handle.participant);
            Stats::bump(&q.stats.dequeues);
            WfHpHandle::read_deq_result(q, tid)
        }
    }

    /// Resumes the stalled owner: completes the operation (help may
    /// already have done all the work) and returns the dequeued value,
    /// if this was a dequeue.
    pub fn finish(mut self) -> Option<T> {
        self.complete()
    }

    /// Walks away without completing — see
    /// [`PendingOp::abandon`](crate::PendingOp::abandon).
    pub fn abandon(mut self) {
        self.done = true;
    }
}

impl<T: Send> Drop for PendingOpHp<'_, '_, T> {
    fn drop(&mut self) {
        if !self.done {
            drop(self.complete());
        }
    }
}

impl<T: Send> Drop for WfHpHandle<'_, T> {
    fn drop(&mut self) {
        // §3.3 "dummy descriptor on exit" — same rationale and order as
        // `WfHandle`'s Drop.
        let q = self.queue;
        let tid = self.id.id();
        // Exit counts as an operation under the lease protocol — see
        // `WfHandle::drop` for why the liveness bump precedes the check.
        if q.config.reap_patience != 0 {
            q.state[tid].bump_beat_shared();
        }
        if !self.id.lease_holds() {
            // Reaped out from under us: the reaper drove the descriptor
            // idle, quarantined our hazard record (now adoptable — we
            // must NOT run `Participant::drop` on it, see the field
            // doc), and the slot may belong to a successor. Only the
            // private node cache is still ours.
            for node in self.local.drain(..) {
                // SAFETY: cached nodes are exclusively ours.
                unsafe { q.pool().release(node) };
            }
            return;
        }
        // Retract the published record token before the ID can be
        // recycled: a later reap of this slot must not quarantine our
        // (dropped, possibly re-adopted) record.
        q.hp_tokens[tid].store(0, Ordering::SeqCst);
        let (w, phase) = q.state[tid].view(Ordering::SeqCst);
        if w.pending() {
            if w.enqueue() {
                q.help_enq(&mut self.participant, tid, phase, tid);
                q.help_finish_enq(&mut self.participant);
            } else {
                q.help_deq(&mut self.participant, tid, phase, tid);
                q.help_finish_deq(&mut self.participant);
                // Claim (and discard) the result so the node's token
                // gate completes and conservation stays exact.
                drop(Self::read_deq_result(q, tid));
            }
        } else if self.deq_in_flight {
            // A panic unwound out of `dequeue` after the operation
            // completed but before the epilogue: the word is ours and
            // unclaimed. Claim it so the value node's token gate
            // completes (otherwise the node would sit in limbo forever).
            drop(Self::read_deq_result(q, tid));
        }
        // Drive tail (and, for symmetry, head) past any node of ours —
        // see `WfHandle::drop` for why the dummy must wait for this.
        q.help_finish_enq(&mut self.participant);
        q.help_finish_deq(&mut self.participant);
        // Fresh idle descriptor (version-bumped in place).
        q.state[tid].reset();
        // Hand the private node cache back to the shared pool.
        for node in self.local.drain(..) {
            // SAFETY: cached nodes are exclusively ours.
            unsafe { q.pool().release(node) };
        }
        // SAFETY: dropped exactly once — the reaped path above returns
        // early (leaking the quarantined record on purpose) and nothing
        // else touches the `ManuallyDrop`. The participant clears its
        // slots and parks leftover retirees for adoption; `self.id`
        // then drops after this body, releasing the virtual ID.
        unsafe { ManuallyDrop::drop(&mut self.participant) };
    }
}

impl<T: Send> QueueHandle<T> for WfHpHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        WfHpHandle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        WfHpHandle::dequeue(self)
    }

    fn fast_path_stats(&self) -> Option<FastPathStats> {
        Some(self.local_stats)
    }
}
