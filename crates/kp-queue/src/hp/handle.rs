//! Per-thread handle of the hazard-pointer queue: operation entry
//! points (Figure 4 `enq` / Figure 6 `deq`) and the §3.3 helping-policy
//! dispatch, mirroring `crate::handle`.

use std::ptr;
use kp_sync::atomic::Ordering;

use hazard::Participant;
use idpool::IdGuard;
use queue_traits::QueueHandle;

use crate::chaos_hooks::{self, inject};
use crate::config::HelpPolicy;
use crate::hp::queue::WfQueueHp;
use crate::hp::types::{NodeHp, NO_DEQUEUER, TOKEN_CONSUMED, TOKEN_RECLAIM_READY};
use crate::stats::Stats;

/// Nodes kept in the handle's private cache; surplus from a freelist
/// steal goes back to the shared pool.
const LOCAL_CAP: usize = 32;

/// A registered thread's handle to a [`WfQueueHp`].
///
/// Owns the thread's virtual ID, its hazard-pointer record, *and* a
/// private node cache: enqueues allocate from it, refilling by stealing
/// the queue's shared freelist, so the steady-state operation path
/// performs zero heap allocations — the HP counterpart of the epoch
/// handle's `RetireCache`.
///
/// As with [`WfHandle`](crate::WfHandle), dropping the handle while its
/// operation is still pending completes the operation and leaves a
/// fresh idle descriptor behind (§3.3 "dummy descriptor on exit")
/// before the ID and the hazard record are released.
pub struct WfHpHandle<'q, T: Send> {
    queue: &'q WfQueueHp<T>,
    id: IdGuard<'q>,
    participant: Participant<'q>,
    cursor: usize,
    rng: u64,
    /// Private node cache (see `hp::pool`). Pre-sized so pushes never
    /// allocate.
    local: Vec<*mut NodeHp<T>>,
    /// True from a dequeue's publish until its epilogue claimed the
    /// result. Lets `Drop` (after a panic unwound out of `dequeue`)
    /// distinguish a completed-but-unclaimed word — whose value node
    /// must still be consumed to finish its token gate — from an old
    /// word whose result was already taken (re-claiming that one could
    /// steal a *recycled* node's fresh value).
    deq_in_flight: bool,
}

// SAFETY: the raw pointers in `local` are nodes exclusively owned by
// this handle (released through the token gate before they entered a
// pool, stolen/popped from there); moving the handle moves that
// ownership. Everything else is `Send` on its own.
unsafe impl<T: Send> Send for WfHpHandle<'_, T> {}

impl<'q, T: Send> WfHpHandle<'q, T> {
    pub(crate) fn new(queue: &'q WfQueueHp<T>, id: IdGuard<'q>, participant: Participant<'q>) -> Self {
        let tid = id.id();
        WfHpHandle {
            queue,
            id,
            participant,
            cursor: (tid + 1) % queue.max_threads(),
            rng: 0x9E37_79B9_7F4A_7C15 ^ ((tid as u64 + 1) << 17),
            local: Vec::with_capacity(LOCAL_CAP),
            deq_in_flight: false,
        }
    }

    /// This handle's virtual thread ID.
    pub fn tid(&self) -> usize {
        self.id.id()
    }

    /// The queue this handle operates on.
    pub fn queue(&self) -> &'q WfQueueHp<T> {
        self.queue
    }

    /// Objects reclaimed so far through this handle's hazard record
    /// (diagnostics; proves reclamation happens without a GC).
    pub fn reclaimed(&self) -> usize {
        self.participant.reclaimed()
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A node ready to carry `value`: recycled from the private cache or
    /// the shared freelist when possible, freshly allocated otherwise.
    fn alloc_node(&mut self, value: T, tid: usize) -> *mut NodeHp<T> {
        let node = match self.local.pop() {
            Some(n) => n,
            None => match self.steal_batch() {
                Some(n) => n,
                None => {
                    Stats::bump(&self.queue.stats.node_allocs);
                    return NodeHp::boxed(Some(value), tid);
                }
            },
        };
        Stats::bump(&self.queue.stats.node_reuses);
        // SAFETY: pooled nodes are exclusively owned (both disposal
        // tokens were observed before release — see `hp::pool`). The
        // SeqCst publish that follows in the caller releases these
        // plain/Relaxed writes to any helper reading the node through
        // the descriptor word.
        unsafe {
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
            (*node).deq_tid.store(NO_DEQUEUER, Ordering::Relaxed);
            (*node).tokens.store(0, Ordering::Relaxed);
            (*node).enq_tid = tid;
            *(*node).value.get() = Some(value);
        }
        node
    }

    /// Steals the shared freelist; keeps up to [`LOCAL_CAP`] nodes,
    /// returns one, and gives any surplus back to the pool.
    fn steal_batch(&mut self) -> Option<*mut NodeHp<T>> {
        let first = self.queue.pool().steal();
        if first.is_null() {
            return None;
        }
        // SAFETY: a stolen list is exclusively ours (see `NodePool`).
        let mut cur = unsafe { (*first).free_next.load(Ordering::Relaxed) };
        while !cur.is_null() {
            // SAFETY: as above.
            let nxt = unsafe { (*cur).free_next.load(Ordering::Relaxed) };
            if self.local.len() < LOCAL_CAP {
                self.local.push(cur);
            } else {
                // SAFETY: exclusively ours; hand it back for other
                // threads' refills.
                unsafe { self.queue.pool().release(cur) };
            }
            cur = nxt;
        }
        Some(first)
    }

    /// §3.3 helping-policy dispatch followed by driving our own op.
    fn run_help(&mut self, phase: i64, enqueue: bool) {
        let q = self.queue;
        let tid = self.id.id();
        let n = q.max_threads();
        match q.config().help {
            HelpPolicy::ScanAll => q.help_all(&mut self.participant, phase, tid),
            HelpPolicy::Cyclic { chunk } => {
                for j in 0..chunk.min(n) {
                    let i = (self.cursor + j) % n;
                    if i != tid {
                        q.help_index(&mut self.participant, i, phase, tid);
                    }
                }
                self.cursor = (self.cursor + chunk) % n;
            }
            HelpPolicy::RandomChunk { chunk } => {
                let start = (self.next_rand() % n as u64) as usize;
                for j in 0..chunk.min(n) {
                    let i = (start + j) % n;
                    if i != tid {
                        q.help_index(&mut self.participant, i, phase, tid);
                    }
                }
            }
        }
        if enqueue {
            q.help_enq(&mut self.participant, tid, phase, tid);
        } else {
            q.help_deq(&mut self.participant, tid, phase, tid);
        }
    }

    /// `enq(value)`, L61–66.
    pub fn enqueue(&mut self, value: T) {
        let q = self.queue;
        let tid = self.id.id();
        chaos_hooks::op_begin();
        let phase = q.next_phase(); // L62
        // Before the node is prepared, so a simulated crash here leaks
        // nothing (the value is dropped by the unwind).
        inject!("kp_hp.publish");
        let node = self.alloc_node(value, tid);
        // L63: publish the operation descriptor — an in-place slot
        // store, not an allocation.
        q.state[tid].publish(phase, node as usize, true);
        self.run_help(phase, true); // L64
        q.help_finish_enq(&mut self.participant); // L65
        Stats::bump(&q.stats.enqueues);
        chaos_hooks::op_end();
    }

    /// `deq()`, L98–108. `None` where the paper throws `EmptyException`.
    pub fn dequeue(&mut self) -> Option<T> {
        let q = self.queue;
        let tid = self.id.id();
        chaos_hooks::op_begin();
        let phase = q.next_phase(); // L99
        inject!("kp_hp.publish");
        // L100: publish the operation descriptor (node = null).
        q.state[tid].publish(phase, 0, false);
        self.deq_in_flight = true;
        self.run_help(phase, false); // L101
        q.help_finish_deq(&mut self.participant); // L102
        Stats::bump(&q.stats.dequeues);
        // L103–107: read the result through our completed word.
        let result = Self::read_deq_result(q, tid);
        self.deq_in_flight = false;
        chaos_hooks::op_end();
        result
    }

    /// The L103–107 epilogue, node-hand-off edition: our completed word
    /// points at the *value node* (the sentinel that replaced the one
    /// our dequeue locked). Acquire suffices for the view — the same
    /// own-slot coherence argument as the epoch version — and the
    /// dereference needs no hazard slot: the token gate keeps the node
    /// allocated until *we* set [`TOKEN_CONSUMED`], however long ago the
    /// operation completed and the node was retired.
    fn read_deq_result(q: &WfQueueHp<T>, tid: usize) -> Option<T> {
        let (w, _) = q.state[tid].view(Ordering::Acquire);
        debug_assert!(!w.pending(), "own op must be complete");
        debug_assert!(!w.enqueue(), "descriptor must be our dequeue");
        if w.node_is_null() {
            Stats::bump(&q.stats.empty_dequeues);
            return None; // L104–105: linearized on an empty queue
        }
        let node = w.node_ptr::<NodeHp<T>>();
        // SAFETY (liveness): `node` cannot be freed or recycled before
        // both tokens are observed, and CONSUMED is set only on the line
        // below — by us, the unique owner of this completed dequeue.
        // SAFETY (value uniqueness): the step-2 CAS wrote `node` into
        // exactly one completed dequeue word (version tags make racing
        // step-2 writers idempotent, not duplicating), and only that
        // word's owner takes the value. The enqueuer's value write
        // happens-before via the SeqCst publish/append/step-2 chain and
        // our Acquire view.
        unsafe {
            let v = (*(*node).value.get()).take();
            let prev = (*node).tokens.fetch_or(TOKEN_CONSUMED, Ordering::AcqRel);
            if prev & TOKEN_RECLAIM_READY != 0 {
                // The hazard scan already cleared the node; disposal is
                // ours (see `hp::pool::reclaim_into_pool`).
                q.pool().release(node);
            }
            Some(v.expect("completed dequeue carries a value"))
        }
    }
}

impl<T: Send> Drop for WfHpHandle<'_, T> {
    fn drop(&mut self) {
        // §3.3 "dummy descriptor on exit" — same rationale and order as
        // `WfHandle`'s Drop.
        let q = self.queue;
        let tid = self.id.id();
        let (w, phase) = q.state[tid].view(Ordering::SeqCst);
        if w.pending() {
            if w.enqueue() {
                q.help_enq(&mut self.participant, tid, phase, tid);
                q.help_finish_enq(&mut self.participant);
            } else {
                q.help_deq(&mut self.participant, tid, phase, tid);
                q.help_finish_deq(&mut self.participant);
                // Claim (and discard) the result so the node's token
                // gate completes and conservation stays exact.
                drop(Self::read_deq_result(q, tid));
            }
        } else if self.deq_in_flight {
            // A panic unwound out of `dequeue` after the operation
            // completed but before the epilogue: the word is ours and
            // unclaimed. Claim it so the value node's token gate
            // completes (otherwise the node would sit in limbo forever).
            drop(Self::read_deq_result(q, tid));
        }
        // Drive tail (and, for symmetry, head) past any node of ours —
        // see `WfHandle::drop` for why the dummy must wait for this.
        q.help_finish_enq(&mut self.participant);
        q.help_finish_deq(&mut self.participant);
        // Fresh idle descriptor (version-bumped in place).
        q.state[tid].reset();
        // Hand the private node cache back to the shared pool.
        for node in self.local.drain(..) {
            // SAFETY: cached nodes are exclusively ours.
            unsafe { q.pool().release(node) };
        }
        // Field drops after this body release the ID and the hazard
        // record (the participant clears its slots and parks leftover
        // retirees for adoption).
    }
}

impl<T: Send> QueueHandle<T> for WfHpHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        WfHpHandle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        WfHpHandle::dequeue(self)
    }
}
