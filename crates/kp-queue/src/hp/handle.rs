//! Per-thread handle of the hazard-pointer queue: operation entry
//! points (Figure 4 `enq` / Figure 6 `deq`) and the §3.3 helping-policy
//! dispatch, mirroring `crate::handle`.

use std::mem::ManuallyDrop;
use std::ptr;

use hazard::Participant;
use idpool::IdGuard;
use queue_traits::QueueHandle;

use crate::chaos_hooks::{self, inject};
use crate::config::HelpPolicy;
use crate::hp::queue::WfQueueHp;
use crate::hp::types::{NodeHp, OpDescHp, H_DESC};
use crate::stats::Stats;

/// A registered thread's handle to a [`WfQueueHp`].
///
/// Owns the thread's virtual ID *and* its hazard-pointer record.
///
/// As with [`WfHandle`](crate::WfHandle), dropping the handle while its
/// operation is still pending completes the operation and leaves a
/// fresh idle descriptor behind (§3.3 "dummy descriptor on exit")
/// before the ID and the hazard record are released.
pub struct WfHpHandle<'q, T: Send> {
    queue: &'q WfQueueHp<T>,
    id: IdGuard<'q>,
    participant: Participant<'q>,
    cursor: usize,
    rng: u64,
}

impl<'q, T: Send> WfHpHandle<'q, T> {
    pub(crate) fn new(queue: &'q WfQueueHp<T>, id: IdGuard<'q>, participant: Participant<'q>) -> Self {
        let tid = id.id();
        WfHpHandle {
            queue,
            id,
            participant,
            cursor: (tid + 1) % queue.max_threads(),
            rng: 0x9E37_79B9_7F4A_7C15 ^ ((tid as u64 + 1) << 17),
        }
    }

    /// This handle's virtual thread ID.
    pub fn tid(&self) -> usize {
        self.id.id()
    }

    /// The queue this handle operates on.
    pub fn queue(&self) -> &'q WfQueueHp<T> {
        self.queue
    }

    /// Objects reclaimed so far through this handle's hazard record
    /// (diagnostics; proves reclamation happens without a GC).
    pub fn reclaimed(&self) -> usize {
        self.participant.reclaimed()
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// §3.3 helping-policy dispatch followed by driving our own op.
    fn run_help(&mut self, phase: i64, enqueue: bool) {
        let q = self.queue;
        let tid = self.id.id();
        let n = q.max_threads();
        match q.config().help {
            HelpPolicy::ScanAll => q.help_all(&mut self.participant, phase, tid),
            HelpPolicy::Cyclic { chunk } => {
                for j in 0..chunk.min(n) {
                    let i = (self.cursor + j) % n;
                    if i != tid {
                        q.help_index(&mut self.participant, i, phase, tid);
                    }
                }
                self.cursor = (self.cursor + chunk) % n;
            }
            HelpPolicy::RandomChunk { chunk } => {
                let start = (self.next_rand() % n as u64) as usize;
                for j in 0..chunk.min(n) {
                    let i = (start + j) % n;
                    if i != tid {
                        q.help_index(&mut self.participant, i, phase, tid);
                    }
                }
            }
        }
        if enqueue {
            q.help_enq(&mut self.participant, tid, phase, tid);
        } else {
            q.help_deq(&mut self.participant, tid, phase, tid);
        }
    }

    /// `enq(value)`, L61–66.
    pub fn enqueue(&mut self, value: T) {
        let q = self.queue;
        let tid = self.id.id();
        chaos_hooks::op_begin();
        let phase = q.next_phase(&self.participant); // L62
        // Before the allocations, so a simulated crash here leaks
        // nothing (the value is dropped by the unwind).
        inject!("kp_hp.publish");
        let node = NodeHp::boxed(Some(value), tid);
        let desc = OpDescHp::boxed(phase, true, true, node, None);
        q.publish(&mut self.participant, tid, desc); // L63
        self.run_help(phase, true); // L64
        q.help_finish_enq(&mut self.participant); // L65
        Stats::bump(&q.stats.enqueues);
        chaos_hooks::op_end();
    }

    /// `deq()`, L98–108. `None` where the paper throws `EmptyException`.
    pub fn dequeue(&mut self) -> Option<T> {
        let q = self.queue;
        let tid = self.id.id();
        chaos_hooks::op_begin();
        let phase = q.next_phase(&self.participant); // L99
        inject!("kp_hp.publish");
        let desc = OpDescHp::boxed(phase, true, false, ptr::null(), None);
        q.publish(&mut self.participant, tid, desc); // L100
        self.run_help(phase, false); // L101
        q.help_finish_deq(&mut self.participant); // L102
        Stats::bump(&q.stats.dequeues);
        // L103–107, §3.4 edition: the result travels in our descriptor,
        // so no queue node is touched here.
        let d = self.participant.protect(H_DESC, &q.state[tid]);
        // SAFETY: protected by H_DESC; slots are never null.
        let result = unsafe {
            debug_assert!(!(*d).pending, "own op must be complete");
            debug_assert!(!(*d).enqueue, "descriptor must be our dequeue");
            if (*d).node.is_null() {
                None // empty-queue result
            } else {
                // Take the §3.4 value. Exactly-once: only the owner
                // executes this, once per operation, and the descriptor
                // cannot be replaced concurrently (only the owner starts
                // operations for `tid`, and completion transitions
                // require `pending == true`).
                let v = ptr::read(&(*d).value);
                Some(ManuallyDrop::into_inner(v).expect("completed dequeue carries a value"))
            }
        };
        self.participant.clear(H_DESC);
        if result.is_none() {
            Stats::bump(&q.stats.empty_dequeues);
        }
        chaos_hooks::op_end();
        result
    }
}

impl<T: Send> Drop for WfHpHandle<'_, T> {
    fn drop(&mut self) {
        // §3.3 "dummy descriptor on exit", hazard-pointer edition — same
        // rationale as `WfHandle`'s Drop: the slot must describe no
        // unfinished operation when the virtual ID is released.
        let q = self.queue;
        let tid = self.id.id();
        let d = self.participant.protect(H_DESC, &q.state[tid]);
        // SAFETY: protected by H_DESC; slots are never null.
        let (pending, enqueue, phase) =
            unsafe { ((*d).pending, (*d).enqueue, (*d).phase) };
        self.participant.clear(H_DESC);
        if pending {
            if enqueue {
                q.help_enq(&mut self.participant, tid, phase, tid);
                q.help_finish_enq(&mut self.participant);
            } else {
                q.help_deq(&mut self.participant, tid, phase, tid);
                q.help_finish_deq(&mut self.participant);
                // Claim the §3.4 couriered value, if any, and drop it —
                // we completed the operation ourselves, so the
                // exactly-once ownership argument of `dequeue` applies.
                let d = self.participant.protect(H_DESC, &q.state[tid]);
                // SAFETY: protected by H_DESC; same take-once argument
                // as the dequeue epilogue.
                unsafe {
                    if !(*d).node.is_null() {
                        let v = ptr::read(&(*d).value);
                        drop(ManuallyDrop::into_inner(v));
                    }
                }
                self.participant.clear(H_DESC);
            }
        }
        // As in `WfHandle::drop`: if we died between enqueue steps 2 and
        // 3 the tail still sits before our node, and helpers' tail swing
        // is gated on our descriptor still referencing it — the dummy
        // would wedge the queue. Drive tail (and, for symmetry, head)
        // past any node of ours first.
        q.help_finish_enq(&mut self.participant);
        q.help_finish_deq(&mut self.participant);
        // Publish a fresh idle descriptor so the slot's next owner (and
        // any helper scanning it) sees a self-contained idle state.
        q.publish(&mut self.participant, tid, OpDescHp::initial());
        // Field drops after this body release the ID and the hazard
        // record (the participant clears its slots and parks leftover
        // retirees for adoption).
    }
}

impl<T: Send> QueueHandle<T> for WfHpHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        WfHpHandle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        WfHpHandle::dequeue(self)
    }
}
