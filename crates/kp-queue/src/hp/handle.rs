//! Per-thread handle of the hazard-pointer queue: operation entry
//! points (Figure 4 `enq` / Figure 6 `deq`) and the §3.3 helping-policy
//! dispatch, mirroring `crate::handle`.

use std::ptr;
use kp_sync::atomic::Ordering;

use hazard::Participant;
use idpool::IdGuard;
use queue_traits::{FastPathStats, QueueHandle};

use crate::chaos_hooks::{self, inject};
use crate::config::HelpPolicy;
use crate::hp::queue::WfQueueHp;
use crate::hp::types::{NodeHp, FAST_ENQUEUER, NO_DEQUEUER, TOKEN_CONSUMED, TOKEN_RECLAIM_READY};
use crate::queue::FastDeq;
use crate::stats::Stats;

/// Nodes kept in the handle's private cache; surplus from a freelist
/// steal goes back to the shared pool.
const LOCAL_CAP: usize = 32;

/// A registered thread's handle to a [`WfQueueHp`].
///
/// Owns the thread's virtual ID, its hazard-pointer record, *and* a
/// private node cache: enqueues allocate from it, refilling by stealing
/// the queue's shared freelist, so the steady-state operation path
/// performs zero heap allocations — the HP counterpart of the epoch
/// handle's `RetireCache`.
///
/// As with [`WfHandle`](crate::WfHandle), dropping the handle while its
/// operation is still pending completes the operation and leaves a
/// fresh idle descriptor behind (§3.3 "dummy descriptor on exit")
/// before the ID and the hazard record are released.
pub struct WfHpHandle<'q, T: Send> {
    queue: &'q WfQueueHp<T>,
    id: IdGuard<'q>,
    participant: Participant<'q>,
    cursor: usize,
    rng: u64,
    /// Private node cache (see `hp::pool`). Pre-sized so pushes never
    /// allocate.
    local: Vec<*mut NodeHp<T>>,
    /// True from a dequeue's publish until its epilogue claimed the
    /// result. Lets `Drop` (after a panic unwound out of `dequeue`)
    /// distinguish a completed-but-unclaimed word — whose value node
    /// must still be consumed to finish its token gate — from an old
    /// word whose result was already taken (re-claiming that one could
    /// steal a *recycled* node's fresh value).
    deq_in_flight: bool,
    /// Fast-path CAS-failure budget; copied from the queue config,
    /// overridable per handle (see [`set_fast_path`]). `0` = slow only.
    ///
    /// [`set_fast_path`]: Self::set_fast_path
    max_fast_failures: usize,
    /// Consecutive fast-path completions since the last starvation
    /// peek (see `Config::starvation_patience`).
    fast_streak: usize,
    /// Plain (non-atomic, handle-local) fast/slow counters — always
    /// collected, unlike the feature-gated shared `Stats`.
    local_stats: FastPathStats,
}

// SAFETY: the raw pointers in `local` are nodes exclusively owned by
// this handle (released through the token gate before they entered a
// pool, stolen/popped from there); moving the handle moves that
// ownership. Everything else is `Send` on its own.
unsafe impl<T: Send> Send for WfHpHandle<'_, T> {}

impl<'q, T: Send> WfHpHandle<'q, T> {
    pub(crate) fn new(queue: &'q WfQueueHp<T>, id: IdGuard<'q>, participant: Participant<'q>) -> Self {
        let tid = id.id();
        WfHpHandle {
            queue,
            id,
            participant,
            cursor: (tid + 1) % queue.max_threads(),
            rng: 0x9E37_79B9_7F4A_7C15 ^ ((tid as u64 + 1) << 17),
            local: Vec::with_capacity(LOCAL_CAP),
            deq_in_flight: false,
            max_fast_failures: queue.config().max_fast_failures,
            fast_streak: 0,
            local_stats: FastPathStats::default(),
        }
    }

    /// Overrides this handle's fast-path CAS-failure budget (the queue
    /// config's `max_fast_failures` is every handle's default). `0`
    /// pins the handle to the wait-free slow path. Lets tests and
    /// benches mix fast-path and slow-only handles on one queue.
    pub fn set_fast_path(&mut self, max_fast_failures: usize) {
        self.max_fast_failures = max_fast_failures;
    }

    /// This handle's fast/slow execution counters (always collected,
    /// independent of the `stats` cargo feature).
    pub fn fast_path_stats(&self) -> FastPathStats {
        self.local_stats
    }

    /// This handle's virtual thread ID.
    pub fn tid(&self) -> usize {
        self.id.id()
    }

    /// The queue this handle operates on.
    pub fn queue(&self) -> &'q WfQueueHp<T> {
        self.queue
    }

    /// Objects reclaimed so far through this handle's hazard record
    /// (diagnostics; proves reclamation happens without a GC).
    pub fn reclaimed(&self) -> usize {
        self.participant.reclaimed()
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A node ready to carry `value`: recycled from the private cache or
    /// the shared freelist when possible, freshly allocated otherwise.
    fn alloc_node(&mut self, value: T, tid: usize) -> *mut NodeHp<T> {
        let node = match self.local.pop() {
            Some(n) => n,
            None => match self.steal_batch() {
                Some(n) => n,
                None => {
                    Stats::bump(&self.queue.stats.node_allocs);
                    return NodeHp::boxed(Some(value), tid);
                }
            },
        };
        Stats::bump(&self.queue.stats.node_reuses);
        // SAFETY: pooled nodes are exclusively owned (both disposal
        // tokens were observed before release — see `hp::pool`). The
        // SeqCst publish that follows in the caller releases these
        // plain/Relaxed writes to any helper reading the node through
        // the descriptor word.
        unsafe {
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
            (*node).deq_tid.store(NO_DEQUEUER, Ordering::Relaxed);
            (*node).tokens.store(0, Ordering::Relaxed);
            (*node).enq_tid = tid;
            *(*node).value.get() = Some(value);
        }
        node
    }

    /// Steals the shared freelist; keeps up to [`LOCAL_CAP`] nodes,
    /// returns one, and gives any surplus back to the pool.
    fn steal_batch(&mut self) -> Option<*mut NodeHp<T>> {
        let first = self.queue.pool().steal();
        if first.is_null() {
            return None;
        }
        // SAFETY: a stolen list is exclusively ours (see `NodePool`).
        let mut cur = unsafe { (*first).free_next.load(Ordering::Relaxed) };
        while !cur.is_null() {
            // SAFETY: as above.
            let nxt = unsafe { (*cur).free_next.load(Ordering::Relaxed) };
            if self.local.len() < LOCAL_CAP {
                self.local.push(cur);
            } else {
                // SAFETY: exclusively ours; hand it back for other
                // threads' refills.
                unsafe { self.queue.pool().release(cur) };
            }
            cur = nxt;
        }
        Some(first)
    }

    /// §3.3 helping-policy dispatch followed by driving our own op.
    fn run_help(&mut self, phase: i64, enqueue: bool) {
        let q = self.queue;
        let tid = self.id.id();
        let n = q.max_threads();
        match q.config().help {
            HelpPolicy::ScanAll => q.help_all(&mut self.participant, phase, tid),
            HelpPolicy::Cyclic { chunk } => {
                for j in 0..chunk.min(n) {
                    let i = (self.cursor + j) % n;
                    if i != tid {
                        q.help_index(&mut self.participant, i, phase, tid);
                    }
                }
                self.cursor = (self.cursor + chunk) % n;
            }
            HelpPolicy::RandomChunk { chunk } => {
                let start = (self.next_rand() % n as u64) as usize;
                for j in 0..chunk.min(n) {
                    let i = (start + j) % n;
                    if i != tid {
                        q.help_index(&mut self.participant, i, phase, tid);
                    }
                }
            }
        }
        if enqueue {
            q.help_enq(&mut self.participant, tid, phase, tid);
        } else {
            q.help_deq(&mut self.participant, tid, phase, tid);
        }
    }

    /// True when this operation must skip the fast path because a
    /// peer's descriptor has been pending while we kept winning it.
    /// Mirrors `WfHandle::starvation_peek` — see there for the rationale
    /// and the SeqCst justification.
    fn starvation_peek(&mut self) -> bool {
        let q = self.queue;
        let patience = q.config().starvation_patience;
        if patience == 0 || self.fast_streak < patience {
            return false;
        }
        self.fast_streak = 0;
        let n = q.max_threads();
        if self.cursor == self.id.id() {
            // Our own slot cannot starve us; rotate and stay fast.
            self.cursor = (self.cursor + 1) % n;
            return false;
        }
        // SeqCst: gates a helping obligation, like `is_still_pending`.
        let (w, _) = q.state[self.cursor].view(Ordering::SeqCst);
        if w.pending() {
            true
        } else {
            self.cursor = (self.cursor + 1) % n;
            false
        }
    }

    /// `enq(value)`, L61–66, preceded by the bounded fast path when
    /// enabled (DESIGN.md §12).
    pub fn enqueue(&mut self, value: T) {
        chaos_hooks::op_begin();
        if self.max_fast_failures > 0 {
            self.enqueue_fast_first(value);
        } else {
            self.slow_enqueue(value);
        }
        chaos_hooks::op_end();
    }

    /// The fast prologue and its demotion edges, out of line
    /// (`#[inline(never)]`) for the same codegen reason as
    /// `WfHandle::enqueue_fast_first`: inlining it into the entry point
    /// perturbed slow-only codegen.
    #[inline(never)]
    fn enqueue_fast_first(&mut self, value: T) {
        let q = self.queue;
        let tid = self.id.id();
        if !self.starvation_peek() {
            let node = self.alloc_node(value, FAST_ENQUEUER);
            let budget = self.max_fast_failures;
            if q.try_fast_enqueue(&mut self.participant, node, budget) {
                self.fast_streak += 1;
                self.local_stats.fast_completions += 1;
                Stats::bump(&q.stats.fast_completions);
                Stats::bump(&q.stats.enqueues);
                return;
            }
            // Exhausted: every append CAS failed, so the node was
            // never published — still exclusively ours. Rebrand it
            // with our real tid and fall back to the slow path.
            self.fast_streak = 0;
            self.local_stats.fast_exhaustions += 1;
            Stats::bump(&q.stats.fast_exhaustions);
            // SAFETY: exclusive ownership (see above); helpers only
            // read `enq_tid` after the descriptor publish below,
            // whose SeqCst store releases this write.
            unsafe { (*node).enq_tid = tid };
            inject!("kp_hp.fast.demote");
            self.local_stats.slow_ops += 1;
            let phase = q.next_phase(); // L62
            self.slow_enqueue_publish(phase, node);
            return;
        }
        self.local_stats.fast_starvation_demotions += 1;
        Stats::bump(&q.stats.fast_starvation_demotions);
        // Demote to the slow path, which helps the starved peer (its
        // slot is at our help cursor).
        self.slow_enqueue(value);
    }

    /// The slow path proper: L61–66 with a freshly prepared node.
    fn slow_enqueue(&mut self, value: T) {
        let q = self.queue;
        let tid = self.id.id();
        self.local_stats.slow_ops += 1;
        let phase = q.next_phase(); // L62
        // Before the node is prepared, so a simulated crash here leaks
        // nothing (the value is dropped by the unwind).
        inject!("kp_hp.publish");
        let node = self.alloc_node(value, tid);
        self.slow_enqueue_publish(phase, node);
    }

    /// L63–65: publish the prepared node's descriptor and drive the
    /// enqueue to completion (shared by the slow path proper and the
    /// fast-path demotion).
    fn slow_enqueue_publish(&mut self, phase: i64, node: *mut NodeHp<T>) {
        let q = self.queue;
        let tid = self.id.id();
        // L63: publish the operation descriptor — an in-place slot
        // store, not an allocation.
        q.state[tid].publish(phase, node as usize, true);
        self.run_help(phase, true); // L64
        q.help_finish_enq(&mut self.participant); // L65
        Stats::bump(&q.stats.enqueues);
    }

    /// `deq()`, L98–108, preceded by the bounded fast path when enabled
    /// (DESIGN.md §12). `None` where the paper throws `EmptyException`.
    pub fn dequeue(&mut self) -> Option<T> {
        chaos_hooks::op_begin();
        let result = if self.max_fast_failures > 0 {
            self.dequeue_fast_first()
        } else {
            self.slow_dequeue()
        };
        chaos_hooks::op_end();
        result
    }

    /// The fast prologue and its demotion edges; out of line for the
    /// same codegen reason as [`enqueue_fast_first`].
    ///
    /// [`enqueue_fast_first`]: Self::enqueue_fast_first
    #[inline(never)]
    fn dequeue_fast_first(&mut self) -> Option<T> {
        let q = self.queue;
        if !self.starvation_peek() {
            let budget = self.max_fast_failures;
            match q.try_fast_dequeue(&mut self.participant, budget) {
                FastDeq::Done(result) => {
                    self.fast_streak += 1;
                    self.local_stats.fast_completions += 1;
                    Stats::bump(&q.stats.fast_completions);
                    Stats::bump(&q.stats.dequeues);
                    return result;
                }
                FastDeq::Exhausted => {
                    self.fast_streak = 0;
                    self.local_stats.fast_exhaustions += 1;
                    Stats::bump(&q.stats.fast_exhaustions);
                    inject!("kp_hp.fast.demote");
                }
            }
        } else {
            self.local_stats.fast_starvation_demotions += 1;
            Stats::bump(&q.stats.fast_starvation_demotions);
        }
        self.slow_dequeue()
    }

    /// The slow path proper: L98–108.
    fn slow_dequeue(&mut self) -> Option<T> {
        let q = self.queue;
        let tid = self.id.id();
        self.local_stats.slow_ops += 1;
        let phase = q.next_phase(); // L99
        inject!("kp_hp.publish");
        // L100: publish the operation descriptor (node = null).
        q.state[tid].publish(phase, 0, false);
        self.deq_in_flight = true;
        self.run_help(phase, false); // L101
        q.help_finish_deq(&mut self.participant); // L102
        Stats::bump(&q.stats.dequeues);
        // L103–107: read the result through our completed word.
        let result = Self::read_deq_result(q, tid);
        self.deq_in_flight = false;
        result
    }

    /// The L103–107 epilogue, node-hand-off edition: our completed word
    /// points at the *value node* (the sentinel that replaced the one
    /// our dequeue locked). Acquire suffices for the view — the same
    /// own-slot coherence argument as the epoch version — and the
    /// dereference needs no hazard slot: the token gate keeps the node
    /// allocated until *we* set [`TOKEN_CONSUMED`], however long ago the
    /// operation completed and the node was retired.
    fn read_deq_result(q: &WfQueueHp<T>, tid: usize) -> Option<T> {
        let (w, _) = q.state[tid].view(Ordering::Acquire);
        debug_assert!(!w.pending(), "own op must be complete");
        debug_assert!(!w.enqueue(), "descriptor must be our dequeue");
        if w.node_is_null() {
            Stats::bump(&q.stats.empty_dequeues);
            return None; // L104–105: linearized on an empty queue
        }
        let node = w.node_ptr::<NodeHp<T>>();
        // SAFETY (liveness): `node` cannot be freed or recycled before
        // both tokens are observed, and CONSUMED is set only on the line
        // below — by us, the unique owner of this completed dequeue.
        // SAFETY (value uniqueness): the step-2 CAS wrote `node` into
        // exactly one completed dequeue word (version tags make racing
        // step-2 writers idempotent, not duplicating), and only that
        // word's owner takes the value. The enqueuer's value write
        // happens-before via the SeqCst publish/append/step-2 chain and
        // our Acquire view.
        unsafe {
            let v = (*(*node).value.get()).take();
            let prev = (*node).tokens.fetch_or(TOKEN_CONSUMED, Ordering::AcqRel);
            if prev & TOKEN_RECLAIM_READY != 0 {
                // The hazard scan already cleared the node; disposal is
                // ours (see `hp::pool::reclaim_into_pool`).
                q.pool().release(node);
            }
            Some(v.expect("completed dequeue carries a value"))
        }
    }
}

impl<T: Send> Drop for WfHpHandle<'_, T> {
    fn drop(&mut self) {
        // §3.3 "dummy descriptor on exit" — same rationale and order as
        // `WfHandle`'s Drop.
        let q = self.queue;
        let tid = self.id.id();
        let (w, phase) = q.state[tid].view(Ordering::SeqCst);
        if w.pending() {
            if w.enqueue() {
                q.help_enq(&mut self.participant, tid, phase, tid);
                q.help_finish_enq(&mut self.participant);
            } else {
                q.help_deq(&mut self.participant, tid, phase, tid);
                q.help_finish_deq(&mut self.participant);
                // Claim (and discard) the result so the node's token
                // gate completes and conservation stays exact.
                drop(Self::read_deq_result(q, tid));
            }
        } else if self.deq_in_flight {
            // A panic unwound out of `dequeue` after the operation
            // completed but before the epilogue: the word is ours and
            // unclaimed. Claim it so the value node's token gate
            // completes (otherwise the node would sit in limbo forever).
            drop(Self::read_deq_result(q, tid));
        }
        // Drive tail (and, for symmetry, head) past any node of ours —
        // see `WfHandle::drop` for why the dummy must wait for this.
        q.help_finish_enq(&mut self.participant);
        q.help_finish_deq(&mut self.participant);
        // Fresh idle descriptor (version-bumped in place).
        q.state[tid].reset();
        // Hand the private node cache back to the shared pool.
        for node in self.local.drain(..) {
            // SAFETY: cached nodes are exclusively ours.
            unsafe { q.pool().release(node) };
        }
        // Field drops after this body release the ID and the hazard
        // record (the participant clears its slots and parks leftover
        // retirees for adoption).
    }
}

impl<T: Send> QueueHandle<T> for WfHpHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        WfHpHandle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        WfHpHandle::dequeue(self)
    }

    fn fast_path_stats(&self) -> Option<FastPathStats> {
        Some(self.local_stats)
    }
}
