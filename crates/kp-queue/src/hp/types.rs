//! Node and descriptor types for the hazard-pointer variant.

use std::mem::ManuallyDrop;
use std::ptr;
use std::sync::atomic::{AtomicIsize, AtomicPtr};

pub(crate) use crate::node::NO_DEQUEUER;

/// Hazard slot index for the head/tail anchor node.
pub(crate) const H_NODE: usize = 0;
/// Hazard slot index for the anchor's successor.
pub(crate) const H_NEXT: usize = 1;
/// Hazard slot index for descriptors.
pub(crate) const H_DESC: usize = 2;
/// Hazard slots per participant.
pub(crate) const H_SLOTS: usize = 3;

/// List node (paper Figure 1 `Node`, hazard-pointer edition).
pub(crate) struct NodeHp<T> {
    /// Written once before publication; *never* mutated afterwards, so
    /// helper reads are race-free. Wrapped in `ManuallyDrop` because
    /// ownership of the value leaves the node by `ptr::read` copy when
    /// the node's predecessor is dequeued (see module docs); the node
    /// must then not drop it.
    pub(crate) value: ManuallyDrop<Option<T>>,
    pub(crate) next: AtomicPtr<NodeHp<T>>,
    /// Immutable; `usize::MAX` for the initial sentinel.
    pub(crate) enq_tid: usize,
    pub(crate) deq_tid: AtomicIsize,
}

impl<T> NodeHp<T> {
    pub(crate) fn boxed(value: Option<T>, enq_tid: usize) -> *mut Self {
        Box::into_raw(Box::new(NodeHp {
            value: ManuallyDrop::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
            enq_tid,
            deq_tid: AtomicIsize::new(NO_DEQUEUER),
        }))
    }

    pub(crate) fn sentinel() -> *mut Self {
        Self::boxed(None, usize::MAX)
    }
}

// SAFETY: cross-thread access follows the protocol in the module docs;
// the value is only read, and ownership transfers are unique.
unsafe impl<T: Send> Send for NodeHp<T> {}
unsafe impl<T: Send> Sync for NodeHp<T> {}

/// Operation descriptor (paper Figure 1 `OpDesc` + the §3.4 `value`
/// field).
pub(crate) struct OpDescHp<T> {
    pub(crate) phase: i64,
    pub(crate) pending: bool,
    pub(crate) enqueue: bool,
    /// enqueue: node to insert; dequeue: the locked sentinel (stage 0+)
    /// or null (initial / empty result). Compared, never dereferenced.
    pub(crate) node: *const NodeHp<T>,
    /// §3.4: a completed non-empty dequeue's result. `ManuallyDrop`
    /// because the descriptor is a *courier*, not an owner: exactly one
    /// copy (the one in the winning descriptor) is taken by the
    /// operation's owner; all descriptor drops leave it alone.
    pub(crate) value: ManuallyDrop<Option<T>>,
}

impl<T> OpDescHp<T> {
    pub(crate) fn initial() -> *mut Self {
        Self::boxed(-1, false, true, ptr::null(), None)
    }

    pub(crate) fn boxed(
        phase: i64,
        pending: bool,
        enqueue: bool,
        node: *const NodeHp<T>,
        value: Option<T>,
    ) -> *mut Self {
        Box::into_raw(Box::new(OpDescHp {
            phase,
            pending,
            enqueue,
            node,
            value: ManuallyDrop::new(value),
        }))
    }
}

// SAFETY: as for NodeHp.
unsafe impl<T: Send> Send for OpDescHp<T> {}
unsafe impl<T: Send> Sync for OpDescHp<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn node_construction() {
        let n = NodeHp::boxed(Some(5u32), 2);
        unsafe {
            assert_eq!(*(*n).value, Some(5));
            assert_eq!((*n).enq_tid, 2);
            assert_eq!((*n).deq_tid.load(Ordering::Relaxed), NO_DEQUEUER);
            // Manual cleanup with value drop (not a sentinel).
            ManuallyDrop::drop(&mut (*n).value);
            drop(Box::from_raw(n));
        }
    }

    #[test]
    fn descriptor_drop_leaves_value_alone() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let d = OpDescHp::boxed(1, false, false, ptr::null(), Some(D(drops.clone())));
        unsafe {
            // Take the value (the owner's read), then free the box.
            let v = ptr::read(&(*d).value);
            drop(Box::from_raw(d)); // must NOT drop the value again
            assert_eq!(drops.load(Ordering::SeqCst), 0);
            drop(ManuallyDrop::into_inner(v));
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1, "dropped exactly once");
    }
}
