//! Node layout and hazard-slot assignments for the HP variant.
//!
//! Per-thread operation state lives in the shared packed `StateSlot`
//! words (`crate::desc`) — descriptors are no longer heap objects, so
//! there is no descriptor type here and no descriptor hazard slot. Only
//! queue *nodes* need protection:
//!
//! | slot | protects |
//! |------|----------|
//! | [`H_NODE`] | the node loaded from `head`/`tail` |
//! | [`H_NEXT`] | that node's successor, across the head swing |

use std::cell::UnsafeCell;
use std::ptr;
use kp_sync::atomic::{AtomicIsize, AtomicPtr, AtomicU8};

pub(crate) use crate::node::{FAST_DEQUEUER, FAST_ENQUEUER, NO_DEQUEUER};

/// Hazard slot index for the head/tail anchor node.
pub(crate) const H_NODE: usize = 0;
/// Hazard slot index for the anchor's successor.
pub(crate) const H_NEXT: usize = 1;
/// Hazard slots per participant.
pub(crate) const H_SLOTS: usize = 2;

/// Set by the dequeue owner once it has taken the node's value.
pub(crate) const TOKEN_CONSUMED: u8 = 1;
/// Set by the hazard scan once no hazard pointer covers the retired node.
pub(crate) const TOKEN_RECLAIM_READY: u8 = 2;

/// List node (paper Figure 1 `Node`, hazard-pointer edition).
///
/// 64-byte aligned for the same two reasons as the epoch variant's
/// `Node`: the address must fit the control word's 42 address bits
/// (`crate::desc` packs addresses shifted right by 6), and recycled
/// nodes must not share cache lines.
///
/// Value ownership runs through `value` — an `UnsafeCell`, *not* the
/// old `ManuallyDrop` courier: exactly one thread (the dequeue owner
/// whose completed descriptor word points at this node) `take`s it, and
/// the two-token disposal gate in `tokens` keeps the node allocated
/// until that happened (see `hp::pool`). A node freed with its value
/// still present (queue teardown) drops the `Option<T>` normally.
#[repr(align(64))]
pub(crate) struct NodeHp<T> {
    /// The payload; `None` once consumed (and in sentinels).
    pub(crate) value: UnsafeCell<Option<T>>,
    /// FIFO link. Null until the node is appended.
    pub(crate) next: AtomicPtr<NodeHp<T>>,
    /// Id of the enqueuer, for `help_finish_enq` (paper L91). A plain
    /// field: written only while the node is exclusively owned (fresh
    /// allocation, or pool reuse before republication).
    pub(crate) enq_tid: usize,
    /// Id of the dequeuer that bound this node as its sentinel, or
    /// [`NO_DEQUEUER`]. The CAS on this field is the dequeue
    /// linearization point (paper L135).
    pub(crate) deq_tid: AtomicIsize,
    /// Two-token disposal gate: [`TOKEN_CONSUMED`] |
    /// [`TOKEN_RECLAIM_READY`]. Whichever `fetch_or` observes the other
    /// bit already set releases the node (see
    /// `hp::pool::reclaim_into_pool` and the dequeue epilogue).
    pub(crate) tokens: AtomicU8,
    /// Freelist link; meaningful only while the pool owns the node.
    pub(crate) free_next: AtomicPtr<NodeHp<T>>,
}

impl<T> NodeHp<T> {
    pub(crate) fn boxed(value: Option<T>, enq_tid: usize) -> *mut Self {
        Box::into_raw(Box::new(NodeHp {
            value: UnsafeCell::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
            enq_tid,
            deq_tid: AtomicIsize::new(NO_DEQUEUER),
            tokens: AtomicU8::new(0),
            free_next: AtomicPtr::new(ptr::null_mut()),
        }))
    }

    /// The initial sentinel. Its `tokens` start with [`TOKEN_CONSUMED`]
    /// pre-set: a sentinel that never was a value node has no owner to
    /// consume it, so the hazard scan alone completes the gate and the
    /// node goes straight to the pool.
    pub(crate) fn sentinel() -> *mut Self {
        let node = Self::boxed(None, usize::MAX);
        // SAFETY: not yet shared.
        unsafe { (*node).tokens = AtomicU8::new(TOKEN_CONSUMED) };
        node
    }
}

// SAFETY: cross-thread access follows the protocol in the module docs:
// `value` is touched only by the node's exclusive owner (before
// publication) and by the unique dequeue owner (token gate); everything
// else is atomics or exclusively-owned plain writes.
unsafe impl<T: Send> Send for NodeHp<T> {}
// SAFETY: as for Send.
unsafe impl<T: Send> Sync for NodeHp<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use kp_sync::atomic::Ordering;

    #[test]
    fn node_alignment_matches_the_packed_word() {
        assert_eq!(std::mem::align_of::<NodeHp<u8>>(), crate::desc::NODE_ALIGN);
        assert_eq!(
            std::mem::align_of::<NodeHp<[u128; 9]>>(),
            crate::desc::NODE_ALIGN
        );
    }

    #[test]
    fn fresh_nodes_start_ungated() {
        let n = NodeHp::boxed(Some(5u32), 2);
        // SAFETY: `n` is freshly leaked and exclusively owned by the test.
        unsafe {
            assert_eq!(*(*n).value.get(), Some(5));
            assert_eq!((*n).enq_tid, 2);
            assert_eq!((*n).deq_tid.load(Ordering::Relaxed), NO_DEQUEUER);
            assert_eq!((*n).tokens.load(Ordering::Relaxed), 0);
            drop(Box::from_raw(n));
        }
    }

    #[test]
    fn sentinels_are_born_consumed() {
        let s: *mut NodeHp<u32> = NodeHp::sentinel();
        // SAFETY: `s` is freshly leaked and exclusively owned by the test.
        unsafe {
            assert_eq!((*s).tokens.load(Ordering::Relaxed), TOKEN_CONSUMED);
            assert!((*(*s).value.get()).is_none());
            drop(Box::from_raw(s));
        }
    }
}
