//! The linked-list node (paper Figure 1, `class Node`).

use std::cell::UnsafeCell;
use kp_sync::atomic::AtomicIsize;

use crossbeam_epoch::Atomic;

/// `deqTid`'s "unlocked" value.
pub(crate) const NO_DEQUEUER: isize = -1;

/// `enq_tid` sentinel marking a node appended by the descriptor-free
/// fast path. Helpers reaching such a node in `help_finish_enq` must not
/// look for an owner descriptor (there is none): step 2 is skipped and
/// the tail is swung unconditionally. Distinct from `usize::MAX` (the
/// initial sentinel) so the two cases cannot be confused in debugging.
pub(crate) const FAST_ENQUEUER: usize = usize::MAX - 1;

/// `deq_tid` value a fast-path dequeue locks the sentinel with. Like
/// `FAST_ENQUEUER`, it tells `help_finish_deq` there is no descriptor to
/// complete (step 2 skipped); the head swing and sentinel retirement
/// proceed exactly as for a slow-path lock.
pub(crate) const FAST_DEQUEUER: isize = -2;

/// A node of the queue's underlying singly-linked list.
///
/// Compared with the Michael–Scott node, the paper adds two fields that
/// let helpers identify *whose* operation a structural change belongs to:
///
/// * `enq_tid` — the (virtual) ID of the thread inserting this node,
///   written once at construction; helpers use it to find the owner's
///   entry in the `state` array (Figure 4, line 89).
/// * `deq_tid` — the ID of the thread whose dequeue removes this node
///   from the list, CASed from −1 exactly once (Figure 6, line 135);
///   this CAS is the linearization point of a successful dequeue.
///
/// The 64-byte alignment serves two masters: it lets the address pack
/// into a [`StateSlot`](crate::desc) ctrl word (`addr >> 6` fits the
/// 42-bit field), and it keeps recycled nodes from false-sharing.
#[repr(align(64))]
pub(crate) struct Node<T> {
    /// `None` only for sentinels whose payload was already taken (or the
    /// initial sentinel, which never had one). Taken exactly once, by the
    /// unique thread whose dequeue locked this node's predecessor.
    pub(crate) value: UnsafeCell<Option<T>>,
    pub(crate) next: Atomic<Node<T>>,
    /// Plain (non-atomic) because it is written only while the node is
    /// exclusively owned: at construction, or on reuse *before* the
    /// owner republishes it (see `WfHandle::alloc_node` — the maturity
    /// rule guarantees no helper still holds the node). `usize::MAX`
    /// for the initial sentinel (never a dangling node, so never read).
    pub(crate) enq_tid: usize,
    pub(crate) deq_tid: AtomicIsize,
}

impl<T> Node<T> {
    pub(crate) fn new(value: Option<T>, enq_tid: usize) -> Self {
        Node {
            value: UnsafeCell::new(value),
            next: Atomic::null(),
            enq_tid,
            deq_tid: AtomicIsize::new(NO_DEQUEUER),
        }
    }

    pub(crate) fn sentinel() -> Self {
        Node::new(None, usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kp_sync::atomic::Ordering;

    #[test]
    fn fresh_node_is_unlocked() {
        let n: Node<u32> = Node::new(Some(5), 3);
        assert_eq!(n.deq_tid.load(Ordering::Relaxed), NO_DEQUEUER);
        assert_eq!(n.enq_tid, 3);
        // SAFETY: `n` is owned by the test; no concurrent access to the cell.
        assert_eq!(unsafe { (*n.value.get()).take() }, Some(5));
    }

    #[test]
    fn sentinel_has_no_value() {
        let s: Node<u32> = Node::sentinel();
        // SAFETY: `s` is owned by the test; no concurrent access to the cell.
        assert!(unsafe { (*s.value.get()).is_none() });
        assert_eq!(s.enq_tid, usize::MAX);
    }

    #[test]
    fn node_alignment_matches_the_packed_word() {
        assert_eq!(std::mem::align_of::<Node<u8>>(), crate::desc::NODE_ALIGN);
        assert!(std::mem::align_of::<Node<[u64; 9]>>() >= crate::desc::NODE_ALIGN);
    }
}
