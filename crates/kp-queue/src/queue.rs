//! The wait-free queue proper: shared structure and helping machinery
//! (paper Figures 1, 2, 4 and 6).
//!
//! Line references in comments (`L62`, `L74`, …) are to the paper's Java
//! listings, so the transcription can be audited side by side.

use std::ptr;
use std::sync::atomic::{AtomicI64, Ordering};

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use crossbeam_utils::CachePadded;
use idpool::IdPool;
use queue_traits::{ConcurrentQueue, RegistrationError};

use crate::chaos_hooks::inject;
use crate::config::{Config, PhasePolicy};
use crate::desc::OpDesc;
use crate::handle::WfHandle;
use crate::node::{Node, NO_DEQUEUER};
use crate::stats::{Stats, StatsSnapshot};

/// The Kogan–Petrank wait-free MPMC FIFO queue.
///
/// See the [crate documentation](crate) for the algorithm overview and
/// the paper-variant table. Construct with [`WfQueue::new`] (default
/// `opt WF (1+2)` configuration) or [`WfQueue::with_config`], then call
/// [`register`](ConcurrentQueue::register) from each participating
/// thread.
pub struct WfQueue<T> {
    pub(crate) head: CachePadded<Atomic<Node<T>>>,
    pub(crate) tail: CachePadded<Atomic<Node<T>>>,
    /// One descriptor slot per virtual thread ID (`state` in Figure 1).
    pub(crate) state: Box<[Atomic<OpDesc<T>>]>,
    /// Monotone phase source under `PhasePolicy::AtomicCounter` (§3.3).
    phase_counter: CachePadded<AtomicI64>,
    /// Virtual thread IDs (§3.3 long-lived renaming).
    ids: IdPool,
    pub(crate) config: Config,
    pub(crate) stats: Stats,
}

// SAFETY: all cross-thread traffic goes through atomics. The only
// non-atomic shared data is each node's payload, which is written before
// the node is published (release CAS) and taken exactly once by the
// unique thread whose dequeue locked the node's predecessor (see
// `WfHandle::dequeue` for the full argument).
unsafe impl<T: Send> Send for WfQueue<T> {}
unsafe impl<T: Send> Sync for WfQueue<T> {}

impl<T: Send> WfQueue<T> {
    /// Creates a queue for at most `max_threads` simultaneously
    /// registered handles, with the default (`opt WF (1+2)`) config.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` is zero.
    pub fn new(max_threads: usize) -> Self {
        Self::with_config(max_threads, Config::default())
    }

    /// Creates a queue with an explicit algorithm [`Config`].
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` is zero or a chunked help policy has a
    /// zero chunk.
    pub fn with_config(max_threads: usize, config: Config) -> Self {
        assert!(max_threads > 0, "max_threads must be positive");
        if let crate::HelpPolicy::Cyclic { chunk } | crate::HelpPolicy::RandomChunk { chunk } =
            config.help
        {
            assert!(chunk > 0, "help chunk must be positive");
        }
        // Queue constructor, L27–35.
        let sentinel = Owned::new(Node::sentinel());
        let queue = WfQueue {
            head: CachePadded::new(Atomic::null()),
            tail: CachePadded::new(Atomic::null()),
            state: (0..max_threads)
                .map(|_| Atomic::new(OpDesc::initial()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            phase_counter: CachePadded::new(AtomicI64::new(0)),
            ids: IdPool::new(max_threads),
            config,
            stats: Stats::default(),
        };
        // SAFETY: the queue is not yet shared.
        let guard = unsafe { epoch::unprotected() };
        let s = sentinel.into_shared(guard);
        queue.head.store(s, Ordering::Relaxed);
        queue.tail.store(s, Ordering::Relaxed);
        queue
    }

    /// The configuration this queue runs with.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Maximum number of simultaneously registered handles
    /// (`NUM_THRDS` in the paper).
    pub fn max_threads(&self) -> usize {
        self.state.len()
    }

    /// A copy of the queue's helping statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Approximate number of elements (O(n) walk; diagnostics only).
    pub fn len_approx(&self) -> usize {
        let guard = epoch::pin();
        let mut n = 0;
        let head = self.head.load(Ordering::SeqCst, &guard);
        // SAFETY: head is never null and reachable nodes live under pin.
        let mut cur = unsafe { head.deref() }.next.load(Ordering::SeqCst, &guard);
        while !cur.is_null() {
            n += 1;
            cur = unsafe { cur.deref() }.next.load(Ordering::SeqCst, &guard);
        }
        n
    }

    /// True if the queue is observed empty.
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::SeqCst, &guard);
        // SAFETY: as in `len_approx`.
        unsafe { head.deref() }
            .next
            .load(Ordering::SeqCst, &guard)
            .is_null()
    }

    // ------------------------------------------------------------------
    // Auxiliary methods (Figure 2)
    // ------------------------------------------------------------------

    /// `maxPhase()`, L48–57.
    pub(crate) fn max_phase(&self, guard: &Guard) -> i64 {
        Stats::bump(&self.stats.phase_scans);
        let mut max = -1;
        for slot in self.state.iter() {
            // SAFETY: descriptor slots are never null; displaced
            // descriptors are epoch-retired, and we are pinned.
            let d = unsafe { slot.load(Ordering::SeqCst, guard).deref() };
            max = max.max(d.phase);
        }
        max
    }

    /// Phase selection: `maxPhase() + 1` (L62/L99) or the §3.3 atomic
    /// counter.
    pub(crate) fn next_phase(&self, guard: &Guard) -> i64 {
        match self.config.phase {
            PhasePolicy::MaxScan => self.max_phase(guard) + 1,
            PhasePolicy::AtomicCounter => self.phase_counter.fetch_add(1, Ordering::SeqCst) + 1,
        }
    }

    /// `isStillPending(tid, ph)`, L58–60.
    pub(crate) fn is_still_pending(&self, tid: usize, ph: i64, guard: &Guard) -> bool {
        // SAFETY: as in `max_phase`.
        let d = unsafe { self.state[tid].load(Ordering::SeqCst, guard).deref() };
        d.pending && d.phase <= ph
    }

    /// Publishes a new descriptor in `state[tid]` (L63/L100) and retires
    /// the displaced one.
    pub(crate) fn publish(&self, tid: usize, desc: OpDesc<T>, guard: &Guard) {
        let old = self.state[tid].swap(Owned::new(desc), Ordering::SeqCst, guard);
        // SAFETY: `old` was just unlinked from the slot; concurrent
        // readers are pinned, so destruction is deferred past them.
        unsafe { guard.defer_destroy(old) };
    }

    /// CAS `state[tid]` from `cur` to `new`, retiring `cur` on success.
    /// On failure the freshly allocated `new` is simply dropped.
    pub(crate) fn cas_state(
        &self,
        tid: usize,
        cur: Shared<'_, OpDesc<T>>,
        new: OpDesc<T>,
        guard: &Guard,
    ) -> bool {
        match self.state[tid].compare_exchange(
            cur,
            Owned::new(new),
            Ordering::SeqCst,
            Ordering::SeqCst,
            guard,
        ) {
            Ok(_) => {
                // SAFETY: `cur` was unlinked by our successful CAS.
                unsafe { guard.defer_destroy(cur) };
                true
            }
            Err(_) => false,
        }
    }

    /// `help(phase)`, L36–47: scan the whole state array and help every
    /// pending operation no younger than `ph`.
    pub(crate) fn help_all(&self, ph: i64, helper: usize, guard: &Guard) {
        for i in 0..self.state.len() {
            self.help_index(i, ph, helper, guard);
        }
    }

    /// One iteration of the `help()` scan body (L38–45), also used by
    /// the chunked §3.3 policies.
    pub(crate) fn help_index(&self, i: usize, ph: i64, helper: usize, guard: &Guard) {
        // SAFETY: as in `max_phase`.
        let d = unsafe { self.state[i].load(Ordering::SeqCst, guard).deref() };
        if d.pending && d.phase <= ph {
            if i != helper {
                Stats::bump(&self.stats.help_calls);
            }
            if d.enqueue {
                self.help_enq(i, ph, helper, guard);
            } else {
                self.help_deq(i, ph, helper, guard);
            }
        }
    }

    // ------------------------------------------------------------------
    // enqueue machinery (Figure 4)
    // ------------------------------------------------------------------

    /// `help_enq(tid, phase)`, L67–84: drive thread `tid`'s pending
    /// enqueue until it is linearized (step 1 of the scheme: append the
    /// node at the end of the list).
    pub(crate) fn help_enq(&self, tid: usize, ph: i64, helper: usize, guard: &Guard) {
        while self.is_still_pending(tid, ph, guard) {
            let last = self.tail.load(Ordering::SeqCst, guard); // L69
            // SAFETY: tail is never null; the node it references is not
            // retired before head passes it, which cannot happen while it
            // is still the tail; we are pinned throughout.
            let last_ref = unsafe { last.deref() };
            let next = last_ref.next.load(Ordering::SeqCst, guard); // L70
            if last == self.tail.load(Ordering::SeqCst, guard) {
                // L71
                if next.is_null() {
                    // L72: enqueue can be applied.
                    // L73: re-check, then read the node from the owner's
                    // descriptor. Reading the descriptor once and using
                    // its own fields is equivalent to the paper's
                    // repeated `state.get(tid)` reads: if the descriptor
                    // changed, the owner's node was already appended,
                    // which makes `last.next` non-null and the CAS below
                    // fail (see the dangling-node invariant, §3.1).
                    let desc = self.state[tid].load(Ordering::SeqCst, guard);
                    // SAFETY: as in `max_phase`.
                    let desc_ref = unsafe { desc.deref() };
                    if desc_ref.pending && desc_ref.phase <= ph && desc_ref.enqueue {
                        inject!("kp.append");
                        let node = Shared::from(desc_ref.node);
                        if last_ref
                            .next
                            .compare_exchange(
                                Shared::null(),
                                node,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                                guard,
                            )
                            .is_ok()
                        {
                            // L74 succeeded: the operation is linearized.
                            Stats::bump(&self.stats.appends_total);
                            if helper != tid {
                                Stats::bump(&self.stats.helped_appends);
                            }
                            self.help_finish_enq(guard); // L75
                            return;
                        }
                    }
                } else {
                    // L79: some enqueue is in progress; finish it first.
                    self.help_finish_enq(guard); // L80
                }
            }
        }
    }

    /// `help_finish_enq()`, L85–97: steps 2 and 3 of the scheme — clear
    /// the owner's `pending` flag, then swing `tail` to the appended
    /// node.
    pub(crate) fn help_finish_enq(&self, guard: &Guard) {
        let last = self.tail.load(Ordering::SeqCst, guard); // L86
        // SAFETY: as in `help_enq`.
        let last_ref = unsafe { last.deref() };
        let next = last_ref.next.load(Ordering::SeqCst, guard); // L87
        if !next.is_null() {
            // SAFETY: `next` was reachable from the pinned tail.
            let next_ref = unsafe { next.deref() };
            let tid = next_ref.enq_tid; // L89: owner of the dangling node
            debug_assert!(
                tid < self.state.len(),
                "dangling node must carry a valid enqueuer tid"
            );
            let cur = self.state[tid].load(Ordering::SeqCst, guard); // L90
            // SAFETY: as in `max_phase`.
            let cur_ref = unsafe { cur.deref() };
            // L91: `last` still tail and the owner's descriptor still
            // refers to the dangling node (guards against a racing
            // help_finish_enq having already completed a *different*
            // operation of the same thread).
            if last == self.tail.load(Ordering::SeqCst, guard)
                && ptr::eq(cur_ref.node, next.as_raw())
            {
                inject!("kp.clear_pending.enq");
                // §3.3 enhancement: skip the descriptor CAS when the flag
                // is already off (a racing helper beat us to step 2).
                if !(self.config.validate_before_cas && !cur_ref.pending) {
                    // L92–93: step 2 — acknowledge linearization.
                    let new = OpDesc {
                        phase: cur_ref.phase,
                        pending: false,
                        enqueue: true,
                        node: next.as_raw(),
                    };
                    self.cas_state(tid, cur, new, guard);
                }
                inject!("kp.swing_tail");
                // L94: step 3 — fix tail. At most one of the racing CASes
                // succeeds; the others observe tail already advanced.
                let _ = self.tail.compare_exchange(
                    last,
                    next,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                    guard,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // dequeue machinery (Figure 6)
    // ------------------------------------------------------------------

    /// `help_deq(tid, phase)`, L109–140: drive thread `tid`'s pending
    /// dequeue until it is linearized (either the sentinel is locked
    /// with `tid`, or the queue is observed empty).
    pub(crate) fn help_deq(&self, tid: usize, ph: i64, helper: usize, guard: &Guard) {
        while self.is_still_pending(tid, ph, guard) {
            let first = self.head.load(Ordering::SeqCst, guard); // L111
            let last = self.tail.load(Ordering::SeqCst, guard); // L112
            // SAFETY: head is never null; a sentinel is only retired
            // after head moves off it, which our pin then defers.
            let first_ref = unsafe { first.deref() };
            let next = first_ref.next.load(Ordering::SeqCst, guard); // L113
            if first != self.head.load(Ordering::SeqCst, guard) {
                continue; // L114 failed: restart
            }
            if first == last {
                // L115: queue might be empty.
                if next.is_null() {
                    // L116: queue is empty.
                    let cur = self.state[tid].load(Ordering::SeqCst, guard); // L117
                    // SAFETY: as in `max_phase`.
                    let cur_ref = unsafe { cur.deref() };
                    if last == self.tail.load(Ordering::SeqCst, guard)
                        && cur_ref.pending
                        && cur_ref.phase <= ph
                    {
                        inject!("kp.clear_pending.deq_empty");
                        // L118–120: record the empty result (node = null)
                        // and clear pending. Descriptor-CAS failure means
                        // another helper resolved the operation.
                        let new = OpDesc {
                            phase: cur_ref.phase,
                            pending: false,
                            enqueue: false,
                            node: ptr::null(),
                        };
                        self.cas_state(tid, cur, new, guard);
                    }
                } else {
                    // L122: an enqueue is in progress; help it first.
                    self.help_finish_enq(guard); // L123
                }
            } else {
                // L125: queue is not empty.
                let cur = self.state[tid].load(Ordering::SeqCst, guard); // L126
                // SAFETY: as in `max_phase`.
                let cur_ref = unsafe { cur.deref() };
                let node = cur_ref.node; // L127
                if !(cur_ref.pending && cur_ref.phase <= ph) {
                    break; // L128
                }
                // L129–134: stage 0 — point the owner's descriptor at the
                // current sentinel, so helpers racing between the empty
                // and non-empty paths agree on which node the operation
                // is about to remove.
                if first == self.head.load(Ordering::SeqCst, guard)
                    && !ptr::eq(node, first.as_raw())
                {
                    inject!("kp.bind_sentinel");
                    let new = OpDesc {
                        phase: cur_ref.phase,
                        pending: true,
                        enqueue: false,
                        node: first.as_raw(),
                    };
                    if !self.cas_state(tid, cur, new, guard) {
                        continue; // L132: descriptor changed; restart
                    }
                }
                inject!("kp.lock_sentinel");
                // L135: step 1 — lock the sentinel with the owner's tid
                // (linearization point of a successful dequeue).
                let locked = first_ref
                    .deq_tid
                    .compare_exchange(
                        NO_DEQUEUER,
                        tid as isize,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok();
                if locked {
                    Stats::bump(&self.stats.locks_total);
                    if helper != tid {
                        Stats::bump(&self.stats.helped_locks);
                    }
                }
                // L136: complete whichever dequeue locked the sentinel.
                self.help_finish_deq(guard);
            }
        }
    }

    /// `help_finish_deq()`, L141–153: steps 2 and 3 — clear the locking
    /// owner's `pending` flag, then swing `head` past the sentinel.
    pub(crate) fn help_finish_deq(&self, guard: &Guard) {
        let first = self.head.load(Ordering::SeqCst, guard); // L142
        // SAFETY: as in `help_deq`.
        let first_ref = unsafe { first.deref() };
        let next = first_ref.next.load(Ordering::SeqCst, guard); // L143
        let tid = first_ref.deq_tid.load(Ordering::SeqCst); // L144
        if tid != NO_DEQUEUER {
            // A locked sentinel was observed: the window between dequeue
            // steps 1 and 2.
            inject!("kp.clear_pending.deq");
            let tid = tid as usize;
            let cur = self.state[tid].load(Ordering::SeqCst, guard); // L146
            // SAFETY: as in `max_phase`.
            let cur_ref = unsafe { cur.deref() };
            if first == self.head.load(Ordering::SeqCst, guard) && !next.is_null() {
                // L147
                if !(self.config.validate_before_cas && !cur_ref.pending) {
                    // L148–149: step 2 — acknowledge linearization,
                    // keeping the descriptor's sentinel reference (the
                    // owner reads the value through it, L103–107).
                    let new = OpDesc {
                        phase: cur_ref.phase,
                        pending: false,
                        enqueue: false,
                        node: cur_ref.node,
                    };
                    self.cas_state(tid, cur, new, guard);
                }
                inject!("kp.swing_head");
                // L150: step 3 — fix head. The winner retires the old
                // sentinel; threads still reading it are pinned.
                if self
                    .head
                    .compare_exchange(first, next, Ordering::SeqCst, Ordering::SeqCst, guard)
                    .is_ok()
                {
                    // SAFETY: `first` is now unreachable from the queue.
                    unsafe { guard.defer_destroy(first) };
                }
            }
        }
    }
}

impl<T: Send> ConcurrentQueue<T> for WfQueue<T> {
    type Handle<'a>
        = WfHandle<'a, T>
    where
        T: 'a;

    fn register(&self) -> Result<Self::Handle<'_>, RegistrationError> {
        match self.ids.acquire() {
            Some(id) => Ok(WfHandle::new(self, id)),
            None => Err(RegistrationError {
                capacity: self.max_threads(),
            }),
        }
    }

    fn thread_capacity(&self) -> usize {
        self.max_threads()
    }
}

impl<T> Drop for WfQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: free the descriptors, then the node list
        // (values still resident are dropped with their nodes).
        let guard = unsafe { epoch::unprotected() };
        for slot in self.state.iter() {
            let d = slot.load(Ordering::Relaxed, guard);
            if !d.is_null() {
                // SAFETY: exclusive access; slot descriptors are owned by
                // the slot.
                drop(unsafe { d.into_owned() });
            }
        }
        let mut cur = self.head.load(Ordering::Relaxed, guard);
        while !cur.is_null() {
            // SAFETY: exclusive access; list nodes are owned by the list.
            let node = unsafe { cur.into_owned() };
            cur = node.next.load(Ordering::Relaxed, guard);
        }
    }
}

impl<T: Send> std::fmt::Debug for WfQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WfQueue")
            .field("max_threads", &self.max_threads())
            .field("config", &self.config)
            .field("len_approx", &self.len_approx())
            .finish()
    }
}
