//! The wait-free queue proper: shared structure and helping machinery
//! (paper Figures 1, 2, 4 and 6).
//!
//! Line references in comments (`L62`, `L74`, …) are to the paper's Java
//! listings, so the transcription can be audited side by side.
//!
//! # Descriptor representation
//!
//! Unlike the paper's Java listing (and this crate's seed), `state[tid]`
//! is not a pointer to a heap-allocated `OpDesc` but an in-place
//! [`StateSlot`]: a packed control word plus a phase word, version-
//! tagged so helper CASes holding stale views fail (see `crate::desc`
//! for the packing and its invariants). Each slot is `CachePadded` so
//! adjacent tids' owner stores and helper scans do not false-share.
//! Every descriptor "allocation" and "retirement" of the seed becomes a
//! store or CAS on the slot — the steady-state hot path performs zero
//! heap allocations (nodes are recycled separately, see
//! `crate::recycle`).
//!
//! # Memory-ordering audit
//!
//! The hot-path orderings were audited for this representation; the
//! outcome (and why most loads *stay* SeqCst) is documented at each
//! site and summarised in the crate docs. The short version: loads that
//! gate helping decisions or descriptor transitions must not observe
//! stale completed words — with node recycling, a stale completed word
//! can carry the *same fields* as the current pending one and trigger
//! the no-op skip, so those reads stay SeqCst; only diagnostics
//! (`len_approx`/`is_empty`) and owner-private epilogues relax to
//! Acquire.

use kp_sync::atomic::{AtomicI64, AtomicUsize, Ordering};

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use kp_sync::CachePadded;
use idpool::IdPool;
use queue_traits::{ConcurrentQueue, RegistrationError};

use crate::chaos_hooks::inject;
use crate::config::{Config, PhasePolicy};
use crate::desc::StateSlot;
use crate::handle::WfHandle;
use crate::node::{Node, FAST_DEQUEUER, FAST_ENQUEUER, NO_DEQUEUER};
use crate::recycle::RetireCache;
use crate::stats::{Stats, StatsSnapshot};

/// The Kogan–Petrank wait-free MPMC FIFO queue.
///
/// See the [crate documentation](crate) for the algorithm overview and
/// the paper-variant table. Construct with [`WfQueue::new`] (default
/// `opt WF (1+2)` configuration) or [`WfQueue::with_config`], then call
/// [`register`](ConcurrentQueue::register) from each participating
/// thread.
pub struct WfQueue<T> {
    pub(crate) head: CachePadded<Atomic<Node<T>>>,
    pub(crate) tail: CachePadded<Atomic<Node<T>>>,
    /// One reusable descriptor slot per virtual thread ID (`state` in
    /// Figure 1), padded to its own cache line.
    pub(crate) state: Box<[CachePadded<StateSlot>]>,
    /// Monotone phase source under `PhasePolicy::AtomicCounter` (§3.3).
    phase_counter: CachePadded<AtomicI64>,
    /// Virtual thread IDs (§3.3 long-lived renaming).
    pub(crate) ids: IdPool,
    /// Per-tid epoch-participant token of the handle's current OS
    /// thread (`crossbeam_epoch::participant_token`), published lazily
    /// by the owner at operation start when the reaper is enabled and 0
    /// otherwise. A reap uses it to quarantine a dead owner's wedged
    /// pin so the epoch can advance again (DESIGN.md §13).
    pub(crate) epoch_tokens: Box<[CachePadded<AtomicUsize>]>,
    pub(crate) config: Config,
    pub(crate) stats: Stats,
}

// SAFETY: all cross-thread traffic goes through atomics. The only
// non-atomic shared data is each node's payload (written before the
// node is published and taken exactly once by the unique thread whose
// dequeue locked the node's predecessor — see `WfHandle::dequeue`) and
// each node's `enq_tid` (rewritten only while the node is exclusively
// owned, before republication — see `WfHandle::alloc_node`).
unsafe impl<T: Send> Send for WfQueue<T> {}
// SAFETY: as for Send.
unsafe impl<T: Send> Sync for WfQueue<T> {}

impl<T: Send> WfQueue<T> {
    /// Creates a queue for at most `max_threads` simultaneously
    /// registered handles, with the default (`opt WF (1+2)`) config.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` is zero.
    pub fn new(max_threads: usize) -> Self {
        Self::with_config(max_threads, Config::default())
    }

    /// Creates a queue with an explicit algorithm [`Config`].
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` is zero or a chunked help policy has a
    /// zero chunk.
    pub fn with_config(max_threads: usize, config: Config) -> Self {
        assert!(max_threads > 0, "max_threads must be positive");
        if let crate::HelpPolicy::Cyclic { chunk } | crate::HelpPolicy::RandomChunk { chunk } =
            config.help
        {
            assert!(chunk > 0, "help chunk must be positive");
        }
        // Queue constructor, L27–35.
        let sentinel = Owned::new(Node::sentinel());
        let queue = WfQueue {
            head: CachePadded::new(Atomic::null()),
            tail: CachePadded::new(Atomic::null()),
            state: (0..max_threads)
                .map(|_| CachePadded::new(StateSlot::initial()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            phase_counter: CachePadded::new(AtomicI64::new(0)),
            ids: IdPool::new(max_threads),
            epoch_tokens: (0..max_threads)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            config,
            stats: Stats::default(),
        };
        // SAFETY: the queue is not yet shared.
        let guard = unsafe { epoch::unprotected() };
        let s = sentinel.into_shared(guard);
        queue.head.store(s, Ordering::Relaxed);
        queue.tail.store(s, Ordering::Relaxed);
        queue
    }

    /// The configuration this queue runs with.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Maximum number of simultaneously registered handles
    /// (`NUM_THRDS` in the paper).
    pub fn max_threads(&self) -> usize {
        self.state.len()
    }

    /// A copy of the queue's helping statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Approximate number of elements (O(n) walk; diagnostics only).
    ///
    /// Ordering relaxation: Acquire, not SeqCst. The result is advisory
    /// — it participates in no helping decision and no proof obligation
    /// — so all it needs is that a non-null `next` dereferences a fully
    /// initialised node, which Acquire (paired with the release append
    /// CAS) provides.
    pub fn len_approx(&self) -> usize {
        let guard = epoch::pin();
        let mut n = 0;
        let head = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: head is never null and reachable nodes live under pin.
        let mut cur = unsafe { head.deref() }.next.load(Ordering::Acquire, &guard);
        while !cur.is_null() {
            n += 1;
            // SAFETY: a non-null `next` reaches an initialised node kept live by
            // the pin — same argument as for `head` above.
            cur = unsafe { cur.deref() }.next.load(Ordering::Acquire, &guard);
        }
        n
    }

    /// True if the queue is observed empty.
    ///
    /// Ordering relaxation: Acquire — same advisory-only argument as
    /// [`len_approx`](Self::len_approx).
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: as in `len_approx`.
        unsafe { head.deref() }
            .next
            .load(Ordering::Acquire, &guard)
            .is_null()
    }

    // ------------------------------------------------------------------
    // Auxiliary methods (Figure 2)
    // ------------------------------------------------------------------

    /// `maxPhase()`, L48–57.
    ///
    /// The phase loads stay SeqCst: this scan is the doorway of the
    /// Bakery-style phase protocol. Its wait-freedom argument (Lemma 1)
    /// needs every phase chosen before our scan started to be visible
    /// to the scan, which the SC total order gives and Acquire would
    /// not (an Acquire load may return any value not older than the
    /// last one *this* thread saw).
    pub(crate) fn max_phase(&self) -> i64 {
        Stats::bump(&self.stats.phase_scans);
        let mut max = -1;
        for slot in self.state.iter() {
            max = max.max(slot.load_phase(Ordering::SeqCst));
        }
        max
    }

    /// Phase selection: `maxPhase() + 1` (L62/L99) or the §3.3 atomic
    /// counter.
    pub(crate) fn next_phase(&self) -> i64 {
        match self.config.phase {
            PhasePolicy::MaxScan => self.max_phase() + 1,
            PhasePolicy::AtomicCounter => self.phase_counter.fetch_add(1, Ordering::SeqCst) + 1,
        }
    }

    /// `isStillPending(tid, ph)`, L58–60.
    ///
    /// SeqCst on the ctrl load: this read gates the helping obligation.
    /// Under Acquire a helper could keep reading a stale pre-publish
    /// word for an operation that is pending in the SC order and
    /// decline to help it, undermining the bounded-helping argument
    /// (Lemma 2's "every pending op with a small enough phase gets
    /// helped").
    pub(crate) fn is_still_pending(&self, tid: usize, ph: i64) -> bool {
        let (w, phase) = self.state[tid].view(Ordering::SeqCst);
        w.pending() && phase <= ph
    }

    /// `help(phase)`, L36–47: scan the whole state array and help every
    /// pending operation no younger than `ph`.
    pub(crate) fn help_all(
        &self,
        ph: i64,
        helper: usize,
        guard: &Guard,
        cache: &mut RetireCache<T>,
    ) {
        for i in 0..self.state.len() {
            self.help_index(i, ph, helper, guard, cache);
        }
    }

    /// One iteration of the `help()` scan body (L38–45), also used by
    /// the chunked §3.3 policies.
    ///
    /// The ctrl load is SeqCst for the same helping-obligation reason
    /// as [`is_still_pending`](Self::is_still_pending).
    pub(crate) fn help_index(
        &self,
        i: usize,
        ph: i64,
        helper: usize,
        guard: &Guard,
        cache: &mut RetireCache<T>,
    ) {
        let (w, phase) = self.state[i].view(Ordering::SeqCst);
        if w.pending() && phase <= ph {
            if i != helper {
                Stats::bump(&self.stats.help_calls);
            }
            if w.enqueue() {
                self.help_enq(i, ph, helper, guard);
            } else {
                self.help_deq(i, ph, helper, guard, cache);
            }
        }
    }

    // ------------------------------------------------------------------
    // enqueue machinery (Figure 4)
    // ------------------------------------------------------------------

    /// `help_enq(tid, phase)`, L67–84: drive thread `tid`'s pending
    /// enqueue until it is linearized (step 1 of the scheme: append the
    /// node at the end of the list).
    pub(crate) fn help_enq(&self, tid: usize, ph: i64, helper: usize, guard: &Guard) {
        while self.is_still_pending(tid, ph) {
            let last = self.tail.load(Ordering::SeqCst, guard); // L69
            // SAFETY: tail is never null; the node it references is not
            // retired before head passes it, which cannot happen while it
            // is still the tail; we are pinned throughout (and recycled
            // nodes obey the same maturity rule as freed ones, so our pin
            // also keeps `last` out of any reuse cache hand-out).
            let last_ref = unsafe { last.deref() };
            let next = last_ref.next.load(Ordering::SeqCst, guard); // L70
            if last == self.tail.load(Ordering::SeqCst, guard) {
                // L71
                if next.is_null() {
                    // L72: enqueue can be applied.
                    // L73: re-check, then read the node from the owner's
                    // descriptor. Reading the slot once and using its own
                    // fields is equivalent to the paper's repeated
                    // `state.get(tid)` reads: if the descriptor changed,
                    // the owner's node was already appended, which makes
                    // `last.next` non-null and the CAS below fail (the
                    // dangling-node invariant, §3.1). Node recycling does
                    // not weaken this: CAS success proves `last.next` was
                    // null, i.e. the node we read was never appended, so
                    // the owner's operation cannot have completed and the
                    // node cannot have been retired, let alone reused.
                    // SeqCst keeps the read coherent with the pending
                    // check inside `is_still_pending` above.
                    let (w, phase) = self.state[tid].view(Ordering::SeqCst);
                    if w.pending() && phase <= ph && w.enqueue() {
                        inject!("kp.append");
                        let node = Shared::from(w.node_ptr::<Node<T>>() as *const Node<T>);
                        if last_ref
                            .next
                            .compare_exchange(
                                Shared::null(),
                                node,
                                Ordering::SeqCst,
                                Ordering::Relaxed,
                                guard,
                            )
                            .is_ok()
                        {
                            // L74 succeeded: the operation is linearized.
                            Stats::bump(&self.stats.appends_total);
                            if helper != tid {
                                Stats::bump(&self.stats.helped_appends);
                            }
                            self.help_finish_enq(guard); // L75
                            return;
                        }
                    }
                } else {
                    // L79: some enqueue is in progress; finish it first.
                    self.help_finish_enq(guard); // L80
                }
            }
        }
    }

    /// `help_finish_enq()`, L85–97: steps 2 and 3 of the scheme — clear
    /// the owner's `pending` flag, then swing `tail` to the appended
    /// node.
    pub(crate) fn help_finish_enq(&self, guard: &Guard) {
        let last = self.tail.load(Ordering::SeqCst, guard); // L86
        // SAFETY: as in `help_enq`.
        let last_ref = unsafe { last.deref() };
        let next = last_ref.next.load(Ordering::SeqCst, guard); // L87
        if !next.is_null() {
            // SAFETY: `next` was reachable from the pinned tail.
            let next_ref = unsafe { next.deref() };
            let tid = next_ref.enq_tid; // L89: owner of the dangling node
            if tid == FAST_ENQUEUER {
                // Fast-path node: there is no descriptor to complete
                // (the append CAS both linearized and acknowledged the
                // operation), so step 2 — and the L91 descriptor
                // identity check, which could never pass — is skipped.
                // The tail CAS from `last` re-validates by itself: if
                // tail already advanced, it fails harmlessly.
                inject!("kp.swing_tail");
                let _ = self.tail.compare_exchange(
                    last,
                    next,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                    guard,
                );
                return;
            }
            debug_assert!(
                tid < self.state.len(),
                "dangling node must carry a valid enqueuer tid"
            );
            // L90. SeqCst is required here, not Acquire: with node
            // recycling an Acquire load may return an *old* completed
            // word of a previous operation that reused the same node —
            // its fields ({pending: false, enqueue, node == next}) equal
            // the transition target, so `cas_ctrl`'s no-op skip would
            // report step 2 done and we would swing the tail while the
            // real current word is still pending, wedging the owner.
            // SeqCst excludes this: this load is SC-after our `next`
            // read, which is SC-after the append CAS, which is SC-after
            // the owner's publish of the *current* word.
            let cur = self.state[tid].load_ctrl(Ordering::SeqCst);
            // L91: `last` still tail and the owner's descriptor still
            // refers to the dangling node (guards against a racing
            // help_finish_enq having already completed a *different*
            // operation of the same thread).
            if last == self.tail.load(Ordering::SeqCst, guard)
                && cur.node_addr() == next.as_raw() as usize
            {
                inject!("kp.clear_pending.enq");
                // §3.3 enhancement: skip the descriptor CAS when the flag
                // is already off (a racing helper beat us to step 2).
                if !self.config.validate_before_cas || cur.pending() {
                    // L92–93: step 2 — acknowledge linearization (a
                    // version-tagged in-place transition; phase kept).
                    self.state[tid].cas_ctrl(cur, next.as_raw() as usize, false, true);
                }
                inject!("kp.swing_tail");
                // L94: step 3 — fix tail. At most one of the racing CASes
                // succeeds; the others observe tail already advanced.
                let _ = self.tail.compare_exchange(
                    last,
                    next,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                    guard,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // dequeue machinery (Figure 6)
    // ------------------------------------------------------------------

    /// `help_deq(tid, phase)`, L109–140: drive thread `tid`'s pending
    /// dequeue until it is linearized (either the sentinel is locked
    /// with `tid`, or the queue is observed empty).
    pub(crate) fn help_deq(
        &self,
        tid: usize,
        ph: i64,
        helper: usize,
        guard: &Guard,
        cache: &mut RetireCache<T>,
    ) {
        while self.is_still_pending(tid, ph) {
            let first = self.head.load(Ordering::SeqCst, guard); // L111
            let last = self.tail.load(Ordering::SeqCst, guard); // L112
            // SAFETY: head is never null; a sentinel is only retired
            // after head moves off it, which our pin then defers (the
            // reuse cache applies the same maturity rule before handing
            // a node out, so the pin covers recycling too).
            let first_ref = unsafe { first.deref() };
            let next = first_ref.next.load(Ordering::SeqCst, guard); // L113
            if first != self.head.load(Ordering::SeqCst, guard) {
                continue; // L114 failed: restart
            }
            if first == last {
                // L115: queue might be empty.
                if next.is_null() {
                    // L116: queue is empty.
                    // L117: SeqCst — this read must be SC-after the
                    // emptiness observation; combined with the
                    // phase-before-ctrl publish order it guarantees we
                    // never complete a dequeue as "empty" using an
                    // emptiness observation that predates the dequeue's
                    // phase selection (the L117–119 doorway guard).
                    let (cur, phase) = self.state[tid].view(Ordering::SeqCst);
                    if last == self.tail.load(Ordering::SeqCst, guard)
                        && cur.pending()
                        && phase <= ph
                    {
                        inject!("kp.clear_pending.deq_empty");
                        // L118–120: record the empty result (node = null)
                        // and clear pending. Transition failure means
                        // another helper resolved the operation.
                        self.state[tid].cas_ctrl(cur, 0, false, false);
                    }
                } else {
                    // L122: an enqueue is in progress; help it first.
                    self.help_finish_enq(guard); // L123
                }
            } else {
                // L125: queue is not empty.
                // L126: SeqCst for the same helping-correctness reasons
                // as L117/L146.
                let (cur, phase) = self.state[tid].view(Ordering::SeqCst);
                if !(cur.pending() && phase <= ph) {
                    break; // L128
                }
                let node = cur.node_addr(); // L127
                // L129–134: stage 0 — point the owner's descriptor at the
                // current sentinel, so helpers racing between the empty
                // and non-empty paths agree on which node the operation
                // is about to remove.
                if first == self.head.load(Ordering::SeqCst, guard)
                    && node != first.as_raw() as usize
                {
                    inject!("kp.bind_sentinel");
                    if !self.state[tid].cas_ctrl(cur, first.as_raw() as usize, true, false) {
                        continue; // L132: descriptor changed; restart
                    }
                }
                inject!("kp.lock_sentinel");
                // L135: step 1 — lock the sentinel with the owner's tid
                // (linearization point of a successful dequeue).
                let locked = first_ref
                    .deq_tid
                    .compare_exchange(
                        NO_DEQUEUER,
                        tid as isize,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    )
                    .is_ok();
                if locked {
                    Stats::bump(&self.stats.locks_total);
                    if helper != tid {
                        Stats::bump(&self.stats.helped_locks);
                    }
                }
                // L136: complete whichever dequeue locked the sentinel.
                self.help_finish_deq(guard, cache);
            }
        }
    }

    /// `help_finish_deq()`, L141–153: steps 2 and 3 — clear the locking
    /// owner's `pending` flag, then swing `head` past the sentinel.
    pub(crate) fn help_finish_deq(&self, guard: &Guard, cache: &mut RetireCache<T>) {
        let first = self.head.load(Ordering::SeqCst, guard); // L142
        // SAFETY: as in `help_deq`.
        let first_ref = unsafe { first.deref() };
        let next = first_ref.next.load(Ordering::SeqCst, guard); // L143
        let tid = first_ref.deq_tid.load(Ordering::SeqCst); // L144
        if tid == FAST_DEQUEUER {
            // Fast-locked sentinel: the `deqTid` CAS both linearized
            // the dequeue and granted the fast dequeuer unique value
            // ownership (no descriptor courier), so step 2 is skipped.
            // Step 3 and the winner-retires rule are unchanged.
            inject!("kp.swing_head");
            if first == self.head.load(Ordering::SeqCst, guard)
                && !next.is_null()
                && self
                    .head
                    .compare_exchange(first, next, Ordering::SeqCst, Ordering::Relaxed, guard)
                    .is_ok()
            {
                // SAFETY: `first` is now unreachable from the queue and
                // retired exactly once (by the unique CAS winner).
                if unsafe { cache.push(first.as_raw() as *mut Node<T>, guard) } {
                    Stats::bump(&self.stats.cache_overflows);
                }
            }
            return;
        }
        if tid != NO_DEQUEUER {
            // A locked sentinel was observed: the window between dequeue
            // steps 1 and 2.
            inject!("kp.clear_pending.deq");
            let tid = tid as usize;
            // L146: SeqCst — symmetric to the L90 argument: an
            // Acquire-stale completed word of an *older* dequeue that
            // bound the same recycled sentinel would no-op-skip step 2
            // and let us swing head with the current operation still
            // pending.
            let cur = self.state[tid].load_ctrl(Ordering::SeqCst);
            if first == self.head.load(Ordering::SeqCst, guard) && !next.is_null() {
                // L147
                if !self.config.validate_before_cas || cur.pending() {
                    // L148–149: step 2 — acknowledge linearization,
                    // keeping the descriptor's sentinel reference (the
                    // owner reads the value through it, L103–107).
                    self.state[tid].cas_ctrl(cur, cur.node_addr(), false, false);
                }
                inject!("kp.swing_head");
                // L150: step 3 — fix head. The winner owns the unlinked
                // sentinel's retirement: it goes to the winner's reuse
                // cache (or the epoch collector), which holds it until
                // no pin that could observe it remains.
                if self
                    .head
                    .compare_exchange(first, next, Ordering::SeqCst, Ordering::Relaxed, guard)
                    .is_ok()
                {
                    // SAFETY: `first` is now unreachable from the queue
                    // and retired exactly once (by the unique CAS winner).
                    if unsafe { cache.push(first.as_raw() as *mut Node<T>, guard) } {
                        Stats::bump(&self.stats.cache_overflows);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // abandoned-handle reaping (DESIGN.md §13)
    // ------------------------------------------------------------------

    /// Executes a reap of `victim`'s slot. The caller has already won
    /// reap rights at lease `generation` — via `IdPool::begin_reap`
    /// (fresh reap) or `IdPool::takeover_reap` (adopting a reap whose
    /// reaper itself went silent). Wait-free: every phase below is a
    /// bounded helping call or a single CAS.
    ///
    /// The sequence is: adopt the victim's pending operation through
    /// the ordinary helping machinery, drive tail/head past any node of
    /// the victim's (the L91 wedge — helpers can only swing the tail
    /// while the owner's descriptor still references the dangling node,
    /// so the slot must not be retired before the tail passed it), win
    /// the [`StateSlot::try_retire`] election, and only as the election
    /// winner perform the two destructive steps: claim-and-discard an
    /// unclaimed dequeue result, and quarantine the victim's wedged
    /// epoch pin. Finally the lease is returned to the pool
    /// (`finish_reap`), making the virtual ID acquirable again.
    ///
    /// [`StateSlot::try_retire`]: crate::desc::StateSlot::try_retire
    pub(crate) fn reap_slot(
        &self,
        victim: usize,
        generation: u64,
        helper: usize,
        guard: &Guard,
        cache: &mut RetireCache<T>,
    ) {
        inject!("kp.reap.adopt");
        let (w0, phase0) = self.state[victim].view(Ordering::SeqCst);
        let was_pending = w0.pending();
        if was_pending {
            Stats::bump(&self.stats.reap_adoptions);
            if w0.enqueue() {
                self.help_enq(victim, phase0, helper, guard);
            } else {
                self.help_deq(victim, phase0, helper, guard, cache);
            }
        }
        // The L91 wedge: the tail must move past any node the victim's
        // descriptor references before the descriptor may be blanked
        // (same argument as `WfHandle::drop`). Head driven for symmetry.
        self.help_finish_enq(guard);
        self.help_finish_deq(guard, cache);
        inject!("kp.reap.retire");
        let w1 = self.state[victim].load_ctrl(Ordering::SeqCst);
        if w1.pending() {
            // Only reachable if the "dead" owner published a new
            // operation after its lease was revoked — a lease-contract
            // violation (DESIGN.md §13). Leave the slot alone; the
            // lease stays in `Reaping` so the id is at least not
            // handed out while the violator still uses the descriptor.
            debug_assert!(false, "victim republished after lease revocation");
            return;
        }
        if self.state[victim].try_retire(w1) {
            // Election won: we alone own the destructive steps. A
            // stalled co-reaper that read the same word loses the CAS
            // and skips both.
            if was_pending && !w1.enqueue() && !w1.node_is_null() {
                // The victim died mid-dequeue and the operation
                // completed non-empty during *this* reap (we observed
                // it pending under `guard`). Nobody will ever run the
                // owner's epilogue: claim and discard the value so
                // conservation stays exact.
                //
                // SAFETY: `w1` names the sentinel the adopted dequeue
                // locked. We observed the op pending under our pin, so
                // its step-3 head swing — the retirement point — is
                // ordered after our pin began and the node (and its
                // successor) outlives `guard`. The try_retire election
                // makes us the unique claimant, re-establishing the
                // deq_tid-uniqueness take argument of
                // `WfHandle::read_deq_result`.
                let node = w1.node_ptr::<Node<T>>();
                // SAFETY: liveness per the block comment above — the
                // node outlives `guard`.
                let next = unsafe { &*node }.next.load(Ordering::Acquire, guard);
                debug_assert!(!next.is_null(), "locked sentinel must have a successor");
                // SAFETY: as above; each value is taken exactly once.
                let value = unsafe { (*next.deref().value.get()).take() };
                debug_assert!(value.is_some(), "reaped dequeue result already taken");
                drop(value);
            }
            // Quarantine the victim's epoch participation, but only
            // when it is actually wedged (a pin leaked at death). An
            // unpinned participant needs nothing: a live pin() re-reads
            // the global epoch, and a dead thread's TLS destructor
            // already deregistered it. The swap also prevents a later
            // reap of this slot's next lease from acting on a stale
            // token.
            let token = self.epoch_tokens[victim].swap(0, Ordering::SeqCst);
            // `token == participant_token()`: the victim handle last ran
            // on *this* OS thread (epoch participation is per-thread,
            // and several virtual ids can share a thread). Our own
            // participant is pinned right now — by us, the reaper — not
            // wedged by the dead handle; quarantining it would erase our
            // live pin. Skip: nothing is wedged in that case.
            //
            // The publisher scan generalizes that to *any* live handle
            // sharing the victim's OS thread: a handle publishes its
            // token (op_prologue) before it pins, so a handle currently
            // inside an operation on that thread is visible in some
            // other `epoch_tokens` slot — its pin is live, not wedged,
            // and must not be erased. Two reapers racing on two
            // abandoned slots that share a token cannot *both* skip:
            // each swaps its victim's slot to 0 before scanning
            // (SeqCst), so at least one scan runs after both swaps and
            // finds no publisher. A double quarantine is idempotent.
            // Residual window: a brand-new handle's first publish on
            // the victim's thread racing this scan — see DESIGN.md
            // §13.4 (the wall-clock reap floor makes it require a
            // patience-window-long preemption inside a few-instruction
            // prologue).
            let shared_by_live_handle = || {
                self.epoch_tokens
                    .iter()
                    .enumerate()
                    .any(|(i, t)| i != victim && t.load(Ordering::SeqCst) == token)
            };
            if token != 0
                && token != epoch::participant_token()
                && !shared_by_live_handle()
                && epoch::participant_is_pinned(token)
            {
                // SAFETY: the lease revocation (begin_reap/takeover)
                // poisons the handle — a surviving owner's next op
                // panics before touching the queue — so the
                // participant is never used for this queue again;
                // using it from *another* queue on the same (dead by
                // contract) thread is the documented lease-contract
                // violation (DESIGN.md §13).
                if unsafe { epoch::quarantine_participant(token) } {
                    Stats::bump(&self.stats.quarantines);
                }
            }
        }
        inject!("kp.reap.finish");
        if self.ids.finish_reap(victim, generation) {
            Stats::bump(&self.stats.reaps);
        }
    }

    // ------------------------------------------------------------------
    // fast path (no descriptor, no phase, no helping obligation —
    // the bounded lock-free Michael–Scott loop of the 2012
    // fast-path/slow-path methodology; see DESIGN.md §12)
    // ------------------------------------------------------------------

    /// Bounded lock-free enqueue attempt. `node` is still private to
    /// the caller and carries `enq_tid == FAST_ENQUEUER`; at most
    /// `budget` loop iterations run (the handle's — possibly
    /// per-handle-overridden — `max_fast_failures`). Returns `true` once the
    /// append CAS — the same linearization point as the slow path's
    /// L74 — succeeds. `false` means every iteration lost to a
    /// concurrent operation (each failure proves one succeeded, which
    /// bounds the loop by global progress), leaving `node` private so
    /// the caller can demote it to the slow path.
    ///
    /// `inflight` is the caller's panic-recovery tracker for the
    /// private node: it is cleared the instant the append CAS publishes
    /// the node, so an unwind landing after publication (e.g. at the
    /// `fast.swing_tail` chaos site) cannot double-free it.
    pub(crate) fn try_fast_enqueue(
        &self,
        node: *mut Node<T>,
        budget: usize,
        inflight: &mut *mut Node<T>,
        guard: &Guard,
    ) -> bool {
        // SAFETY: the caller owns `node` exclusively until the append
        // CAS publishes it.
        debug_assert_eq!(unsafe { &*node }.enq_tid, FAST_ENQUEUER);
        let new = Shared::from(node as *const Node<T>);
        for _ in 0..budget {
            inject!("kp.fast.enq");
            let last = self.tail.load(Ordering::SeqCst, guard);
            // SAFETY: as in `help_enq` — tail is never null and our pin
            // defers retirement/reuse of any node it reaches.
            let last_ref = unsafe { last.deref() };
            let next = last_ref.next.load(Ordering::SeqCst, guard);
            if last != self.tail.load(Ordering::SeqCst, guard) {
                continue;
            }
            if next.is_null() {
                if last_ref
                    .next
                    .compare_exchange(
                        Shared::null(),
                        new,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                        guard,
                    )
                    .is_ok()
                {
                    // Linearized (the shared L74 append point); the
                    // node is public now — recovery must not free it.
                    *inflight = std::ptr::null_mut();
                    Stats::bump(&self.stats.appends_total);
                    inject!("kp.fast.swing_tail");
                    // Step 3, best effort: any helper's
                    // help_finish_enq (FAST_ENQUEUER branch) also
                    // swings the tail past our node.
                    let _ = self.tail.compare_exchange(
                        last,
                        new,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                        guard,
                    );
                    return true;
                }
            } else {
                // Tail lags behind a dangling node (fast or slow):
                // finish that enqueue first, exactly like L79–80 — this
                // is what keeps a slow-path append's step-2-before-
                // step-3 order intact when fast ops race it.
                self.help_finish_enq(guard);
            }
        }
        false
    }

    /// Test infrastructure (reached through the `#[doc(hidden)]`
    /// `WfHandle::fast_append_unswung`): performs the fast-path append
    /// CAS and then deliberately **skips** the step-3 tail swing,
    /// leaving the tail lagging — the exact shared state a thread
    /// killed at `kp.fast.swing_tail` leaves behind when nothing runs
    /// its unwind recovery (sudden death). The value *is* linearized
    /// (the append CAS is the linearization point). Loops until the
    /// append lands so the resulting wedge is deterministic.
    pub(crate) fn append_no_swing(&self, node: *mut Node<T>, guard: &Guard) {
        // SAFETY: the caller owns `node` exclusively until the append
        // CAS publishes it.
        debug_assert_eq!(unsafe { &*node }.enq_tid, FAST_ENQUEUER);
        let new = Shared::from(node as *const Node<T>);
        loop {
            let last = self.tail.load(Ordering::SeqCst, guard);
            // SAFETY: as in `try_fast_enqueue` — tail is never null and
            // our pin defers retirement/reuse of any node it reaches.
            let last_ref = unsafe { last.deref() };
            let next = last_ref.next.load(Ordering::SeqCst, guard);
            if last != self.tail.load(Ordering::SeqCst, guard) {
                continue;
            }
            if next.is_null() {
                if last_ref
                    .next
                    .compare_exchange(
                        Shared::null(),
                        new,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                        guard,
                    )
                    .is_ok()
                {
                    Stats::bump(&self.stats.appends_total);
                    return;
                }
            } else {
                self.help_finish_enq(guard);
            }
        }
    }

    /// Bounded lock-free dequeue attempt. Linearizes either empty (the
    /// Michael–Scott `head == tail && next == null` check, head-
    /// validated) or by CASing the sentinel's `deqTid` from
    /// `NO_DEQUEUER` to `FAST_DEQUEUER` — the same lock word slow-path
    /// dequeues use (L135), so the two paths serialize on the
    /// sentinel: a slow-path stage-1 lock blocks the fast path and
    /// vice versa. Lock success proves the sentinel was never dequeued
    /// and hence is still the head, making the value transfer uniquely
    /// ours.
    pub(crate) fn try_fast_dequeue(
        &self,
        budget: usize,
        cache: &mut RetireCache<T>,
        guard: &Guard,
    ) -> FastDeq<T> {
        for _ in 0..budget {
            inject!("kp.fast.deq");
            let first = self.head.load(Ordering::SeqCst, guard);
            let last = self.tail.load(Ordering::SeqCst, guard);
            // SAFETY: as in `help_deq` — head is never null; sentinel
            // retirement is deferred past our pin.
            let first_ref = unsafe { first.deref() };
            let next = first_ref.next.load(Ordering::SeqCst, guard);
            if first != self.head.load(Ordering::SeqCst, guard) {
                continue;
            }
            if first == last {
                if next.is_null() {
                    // Empty: linearizes at the `next` load above (the
                    // L115–120 shape without a descriptor record).
                    Stats::bump(&self.stats.empty_dequeues);
                    return FastDeq::Done(None);
                }
                // An enqueue is mid-flight; help it land first
                // (L122–123).
                self.help_finish_enq(guard);
                continue;
            }
            if first_ref
                .deq_tid
                .compare_exchange(
                    NO_DEQUEUER,
                    FAST_DEQUEUER,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                // Step 1 won: the dequeue is linearized.
                Stats::bump(&self.stats.locks_total);
                // SAFETY: a locked sentinel's `next` is immutable and
                // kept live by our pin; the lock made us the unique
                // taker of its successor's value (a node's value is
                // taken exactly once, by whoever locks its
                // predecessor).
                let next_ref = unsafe { next.deref() };
                // SAFETY: value uniqueness — see the lock argument
                // above; the enqueuer's write is released by its append
                // CAS and acquired by our SeqCst next load.
                let taken = unsafe { (*next_ref.value.get()).take() };
                // Checked in release builds on purpose: an invariant
                // break here (e.g. a reap-path double-take) must panic,
                // never become UB. The branch is perfectly predicted.
                let value =
                    taken.expect("fast-locked sentinel's successor must hold a value");
                inject!("kp.fast.swing_head");
                // Step 3, best effort: a helper's help_finish_deq
                // (FAST_DEQUEUER branch) also swings; the CAS winner
                // owns the sentinel's retirement.
                if self
                    .head
                    .compare_exchange(first, next, Ordering::SeqCst, Ordering::Relaxed, guard)
                    .is_ok()
                {
                    // SAFETY: `first` is now unreachable and retired
                    // exactly once (by the unique CAS winner).
                    if unsafe { cache.push(first.as_raw() as *mut Node<T>, guard) } {
                        Stats::bump(&self.stats.cache_overflows);
                    }
                }
                return FastDeq::Done(Some(value));
            }
            // Lost the lock to a concurrent dequeue (fast or slow):
            // complete it so head advances, then retry.
            self.help_finish_deq(guard, cache);
        }
        FastDeq::Exhausted
    }
}

/// Outcome of a bounded fast-path dequeue attempt.
pub(crate) enum FastDeq<T> {
    /// The dequeue linearized on the fast path.
    Done(Option<T>),
    /// The CAS-failure budget is exhausted; the caller falls back to
    /// the wait-free slow path.
    Exhausted,
}

impl<T: Send> ConcurrentQueue<T> for WfQueue<T> {
    type Handle<'a>
        = WfHandle<'a, T>
    where
        T: 'a;

    fn register(&self) -> Result<Self::Handle<'_>, RegistrationError> {
        match self.ids.acquire() {
            Some(id) => Ok(WfHandle::new(self, id)),
            None => Err(RegistrationError {
                capacity: self.max_threads(),
            }),
        }
    }

    fn thread_capacity(&self) -> usize {
        self.max_threads()
    }

    /// Derived from the `stats` operation counters (three relaxed
    /// loads), so it costs nothing the counters don't already. `None`
    /// with the feature off — overload layers then disable depth-based
    /// admission rather than trusting a fake zero.
    fn depth_hint(&self) -> Option<usize> {
        #[cfg(feature = "stats")]
        {
            Some(self.stats.depth())
        }
        #[cfg(not(feature = "stats"))]
        {
            None
        }
    }

    fn drained_hint(&self) -> Option<u64> {
        #[cfg(feature = "stats")]
        {
            Some(self.stats.drained())
        }
        #[cfg(not(feature = "stats"))]
        {
            None
        }
    }

    /// The PR-6 memory-pressure signal: retire-cache overflows pushed
    /// to the shared epoch collector. Zero with `stats` off.
    fn pressure_hint(&self) -> u64 {
        #[cfg(feature = "stats")]
        {
            self.stats.cache_overflows.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "stats"))]
        {
            0
        }
    }
}

impl<T> Drop for WfQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: free the node list (values still resident
        // are dropped with their nodes). Descriptors are in-place slot
        // words now — nothing to free.
        // SAFETY: `&mut self` — no thread can still be pinned in this queue.
        let guard = unsafe { epoch::unprotected() };
        let mut cur = self.head.load(Ordering::Relaxed, guard);
        while !cur.is_null() {
            // SAFETY: exclusive access; list nodes are owned by the list.
            let node = unsafe { cur.into_owned() };
            cur = node.next.load(Ordering::Relaxed, guard);
        }
    }
}

impl<T: Send> std::fmt::Debug for WfQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WfQueue")
            .field("max_threads", &self.max_threads())
            .field("config", &self.config)
            .field("len_approx", &self.len_approx())
            .finish()
    }
}
