//! Per-handle node recycling for the epoch variant.
//!
//! Sentinels unlinked by our own `help_finish_deq` head swing go into a
//! small per-thread cache, tagged with the global epoch at retirement,
//! and are reused for this thread's future enqueues once the epoch has
//! advanced two steps — the *same* maturity rule the collector applies
//! before freeing (`crossbeam_epoch::global_epoch`), so a cached node
//! is handed out only when no pin that could still observe it remains
//! active. Soundness is therefore inherited from the shim's free rule,
//! not argued separately.
//!
//! The cache is what makes the steady-state dequeue path allocation-
//! free: without it every head swing pays a `defer_destroy` (epoch-bag
//! traffic) and every enqueue a `Box::new`.

use std::collections::VecDeque;

use crossbeam_epoch::{self as epoch, Guard, Shared};

use crate::node::Node;

/// Upper bound on cached nodes per handle; beyond it (or with
/// `Config::reuse_nodes` off) retired nodes fall back to the epoch
/// collector. Sized so a balanced workload never overflows while a
/// dequeue-heavy burst cannot hoard unboundedly.
const CACHE_CAP: usize = 256;

/// A FIFO of retired nodes, oldest (most mature) first.
pub(crate) struct RetireCache<T> {
    nodes: VecDeque<(usize, *mut Node<T>)>,
    reuse: bool,
}

// SAFETY: every cached node is unlinked from the queue and exclusively
// owned by this cache (the `push` contract); moving the cache — inside
// its handle — to another thread moves that ownership with it.
unsafe impl<T: Send> Send for RetireCache<T> {}

impl<T> RetireCache<T> {
    pub(crate) fn new(reuse: bool) -> Self {
        RetireCache {
            nodes: VecDeque::with_capacity(if reuse { CACHE_CAP } else { 0 }),
            reuse,
        }
    }

    /// Takes ownership of a node just unlinked by the L150 head CAS.
    ///
    /// Returns `true` when the node **overflowed**: reuse is on but the
    /// cache is at [`CACHE_CAP`], so the node was pushed out to the
    /// epoch collector instead of cached. This is the memory-pressure
    /// backpressure signal (DESIGN.md §13) — callers count it in
    /// `Stats::cache_overflows`. A deferral with reuse disabled is the
    /// configured behaviour, not pressure, and returns `false`.
    ///
    /// # Safety
    ///
    /// Caller must own the retirement: the node is unlinked from the
    /// queue and will never be retired again (here, the winner of the
    /// L150 head CAS — exactly one thread per node).
    pub(crate) unsafe fn push(&mut self, node: *mut Node<T>, guard: &Guard) -> bool {
        if !self.reuse {
            // SAFETY: forwarded from the caller.
            unsafe { guard.defer_destroy(Shared::from(node as *const Node<T>)) };
            return false;
        }
        if self.nodes.len() == CACHE_CAP {
            // SAFETY: forwarded from the caller.
            unsafe { guard.defer_destroy(Shared::from(node as *const Node<T>)) };
            return true;
        }
        self.nodes.push_back((epoch::global_epoch(), node));
        false
    }

    /// A node no pinned thread can still observe, if one has matured.
    ///
    /// Our own current pin never blocks maturity: pinning happened at
    /// some epoch `p >= tag`, and `tag + 2 <= global_epoch()` already
    /// proves the global epoch moved past every pin taken at `tag` or
    /// earlier — including one of our own taken before the retirement.
    pub(crate) fn pop_mature(&mut self) -> Option<*mut Node<T>> {
        // Up to two collector nudges: a freshly retired node is tagged
        // with the current epoch and ripens once the global epoch is
        // two steps past it, so two successful `advance` calls take a
        // just-pushed front node from unripe to reusable within a
        // single pop. `advance` is safe (and cheap) while pinned.
        //
        // The nudges cannot help when a *peer* thread sits preempted
        // inside a pin: `advance` refuses to move past an active pin at
        // an older epoch, by design — that pin may still hold a
        // `Shared` into a cached node. On an oversubscribed host
        // (threads > cores) peers are routinely descheduled mid-pin for
        // a whole timeslice, the cache reports nothing mature, and
        // enqueues correctly fall back to fresh heap nodes rather than
        // block: reclamation is lock-free, not wait-free (§3.4). That
        // cost is visible as `allocs_per_op` on the oversubscribed
        // epoch rows of BENCH_PR*.json (up to ~0.5/op on balanced
        // pairs: at most one node per enqueue) and is bounded by
        // `alloc_regression.rs`; the HP variant pins only ≤2 nodes per
        // stalled thread, which is why its contended rows stay
        // allocation-free.
        for _ in 0..2 {
            let &(tag, node) = self.nodes.front()?;
            if tag + 2 <= epoch::global_epoch() {
                self.nodes.pop_front();
                return Some(node);
            }
            epoch::advance();
        }
        let &(tag, node) = self.nodes.front()?;
        if tag + 2 <= epoch::global_epoch() {
            self.nodes.pop_front();
            return Some(node);
        }
        None
    }

    /// Hands every cached node to the collector (handle exit).
    pub(crate) fn drain(&mut self, guard: &Guard) {
        for (_, node) in self.nodes.drain(..) {
            // SAFETY: cached nodes are unlinked and uniquely owned (the
            // `push` contract), and we are giving up reuse of them.
            unsafe { guard.defer_destroy(Shared::from(node as *const Node<T>)) };
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_mature_after_two_epoch_advances() {
        let mut cache: RetireCache<u32> = RetireCache::new(true);
        let node = Box::into_raw(Box::new(Node::new(Some(1), 0)));
        let guard = epoch::pin();
        // SAFETY: `node` is freshly leaked and unreachable from any queue.
        unsafe { cache.push(node, &guard) };
        drop(guard);
        // pop_mature itself nudges the collector; with no other pins it
        // succeeds after at most two calls (one advance each).
        let mut got = None;
        for _ in 0..3 {
            if let Some(n) = cache.pop_mature() {
                got = Some(n);
                break;
            }
        }
        let n = got.expect("node must ripen once no pin remains");
        assert_eq!(n, node);
        assert_eq!(cache.len(), 0);
        // SAFETY: popped from the cache; the test now owns it exclusively.
        unsafe { drop(Box::from_raw(n)) };
    }

    #[test]
    fn reuse_off_defers_to_the_collector() {
        let mut cache: RetireCache<u32> = RetireCache::new(false);
        let node = Box::into_raw(Box::new(Node::new(Some(2), 0)));
        let guard = epoch::pin();
        // SAFETY: as in the test above; the collector takes ownership.
        unsafe { cache.push(node, &guard) };
        assert_eq!(cache.len(), 0, "nothing cached with reuse disabled");
        assert!(cache.pop_mature().is_none());
        drop(guard);
    }
}
