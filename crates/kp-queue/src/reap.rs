//! Per-handle scan state for the abandoned-handle reaper (DESIGN.md
//! §13).
//!
//! A handle with `Config::reap_patience > 0` examines one peer slot
//! after every [`TICK_STRIDE`]-th of its own completed operations (the
//! inspection reads several shared cache lines, so running it on every
//! operation costs a measurable fraction of queue throughput; striding
//! amortizes it to noise and only multiplies detection latency by the
//! same constant, which the patience contract already absorbs). A peer
//! is *frozen* when `reap_patience` consecutive examinations observe an
//! identical liveness snapshot — idpool lease generation, heartbeat, ctrl word
//! and phase for a claimed slot; lease generation alone for a slot
//! stuck mid-reap — and, on top of that, the snapshot stays unchanged
//! for `Config::reap_min_silence_ms` of wall-clock time (the op-count
//! patience alone can elapse within one routine OS preemption; see
//! [`ReapScan::frozen`]). Freezing is the reaper's only liveness oracle: a
//! live handle bumps its heartbeat on every operation (and on
//! [`keepalive`]), so it can only be declared frozen by staying silent
//! for the observer's whole patience window — the lease contract
//! (DESIGN.md §13) makes that the owner's fault, not the reaper's.
//!
//! The struct is deliberately dumb state: the decision of *what to do*
//! with a frozen slot (begin a reap, take over a stalled one) lives in
//! the handles, next to the queue-variant-specific reap execution.
//!
//! [`keepalive`]: crate::WfHandle::keepalive

use crate::desc::CtrlWord;
use std::time::{Duration, Instant};

/// One liveness snapshot of a peer slot. Two equal consecutive
/// snapshots across a patience window mean the peer made no observable
/// progress of any kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Observation {
    /// The slot is leased (`SlotState::Claimed`): freezing requires the
    /// lease generation, the heartbeat, the descriptor word (version
    /// tag included, so helper-driven transitions count as progress)
    /// and the phase all to hold still.
    Claimed {
        generation: u64,
        beat: u64,
        ctrl: CtrlWord,
        phase: i64,
    },
    /// The slot is mid-reap (`SlotState::Reaping`): the reaper itself
    /// is the one being watched. Its only progress signal is the lease
    /// generation (a finished reap frees the slot; a takeover bumps the
    /// generation), so a frozen `Reaping` observation after the
    /// patience window triggers `IdPool::takeover_reap`.
    Reaping { generation: u64 },
}

/// Operations between peer-slot inspections. The freeze oracle's
/// wall-clock detection latency is `TICK_STRIDE * reap_patience`
/// observer operations; deployments pick `reap_patience` against that
/// product (DESIGN.md §13.3).
pub(crate) const TICK_STRIDE: u32 = 16;

/// Cursor + freeze detector. One per handle; not shared.
pub(crate) struct ReapScan {
    /// Peer slot currently under observation.
    cursor: usize,
    /// Last snapshot of `cursor`'s slot, if any.
    obs: Option<Observation>,
    /// Consecutive re-observations that matched `obs`.
    streak: usize,
    /// When the op-count patience was first exhausted for the current
    /// observation — start of the wall-clock silence floor. `None`
    /// until the streak reaches patience, so the hot inspection path
    /// never reads the clock.
    floor_start: Option<Instant>,
    /// Minimum wall-clock silence required *in addition to* the
    /// op-count patience before a slot may be declared frozen.
    min_silence: Duration,
    /// Countdown until the next inspection is due.
    until_due: u32,
}

impl ReapScan {
    pub(crate) fn new(start: usize, min_silence_ms: u64) -> Self {
        ReapScan {
            cursor: start,
            obs: None,
            streak: 0,
            floor_start: None,
            min_silence: Duration::from_millis(min_silence_ms),
            until_due: TICK_STRIDE,
        }
    }

    /// Cheap per-operation gate: returns `true` (and re-arms) on every
    /// [`TICK_STRIDE`]-th call; the handle skips the whole inspection
    /// otherwise. Keeps the hot path at one decrement-and-branch on
    /// handle-private state.
    #[inline]
    pub(crate) fn tick_due(&mut self) -> bool {
        self.until_due -= 1;
        if self.until_due == 0 {
            self.until_due = TICK_STRIDE;
            true
        } else {
            false
        }
    }

    /// The slot this handle is currently watching.
    pub(crate) fn cursor(&self) -> usize {
        self.cursor
    }

    /// Moves on to the next slot, forgetting the current observation.
    pub(crate) fn advance(&mut self, n: usize) {
        self.cursor = (self.cursor + 1) % n;
        self.obs = None;
        self.streak = 0;
        self.floor_start = None;
    }

    /// Folds in a fresh snapshot of the watched slot and decides
    /// whether the slot is frozen: `patience` consecutive *unchanged*
    /// re-observations AND at least `min_silence` of wall-clock time on
    /// top of them. The wall floor exists because op-count patience
    /// alone elapses in low milliseconds on a fast queue — well inside
    /// routine OS preemption — and a falsely-reaped live handle is a
    /// soundness hazard, not just a liveness one (REVIEW: config.rs).
    /// The clock starts when the streak first *reaches* patience (not
    /// at streak start), which is strictly conservative and keeps the
    /// pre-patience inspection path free of clock reads; any observed
    /// progress resets both the streak and the clock.
    pub(crate) fn frozen(&mut self, cur: Observation, patience: usize) -> bool {
        if self.obs == Some(cur) {
            self.streak += 1;
        } else {
            self.obs = Some(cur);
            self.streak = 0;
            self.floor_start = None;
        }
        if self.streak < patience {
            return false;
        }
        if self.min_silence.is_zero() {
            return true;
        }
        match self.floor_start {
            None => {
                self.floor_start = Some(Instant::now());
                false
            }
            Some(start) => start.elapsed() >= self.min_silence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claimed(generation: u64, beat: u64) -> Observation {
        Observation::Claimed {
            generation,
            beat,
            ctrl: crate::desc::StateSlot::initial().load_ctrl(kp_sync::atomic::Ordering::Relaxed),
            phase: -1,
        }
    }

    #[test]
    fn streak_counts_only_identical_snapshots() {
        let mut scan = ReapScan::new(0, 0);
        assert!(!scan.frozen(claimed(0, 1), 2), "first look never counts");
        assert!(!scan.frozen(claimed(0, 1), 2));
        assert!(scan.frozen(claimed(0, 1), 2));
        assert!(!scan.frozen(claimed(0, 2), 2), "heartbeat progress resets");
        assert!(!scan.frozen(claimed(1, 2), 2), "new lease resets");
        assert!(!scan.frozen(claimed(1, 2), 2));
        assert!(
            !scan.frozen(Observation::Reaping { generation: 1 }, 1),
            "a state change is progress too"
        );
        assert!(scan.frozen(Observation::Reaping { generation: 1 }, 1));
    }

    #[test]
    fn wall_floor_gates_freeze_beyond_op_patience() {
        let mut scan = ReapScan::new(0, 40);
        // Op-count patience exhausted immediately…
        assert!(!scan.frozen(claimed(0, 1), 1));
        assert!(!scan.frozen(claimed(0, 1), 1), "floor clock just started");
        // …but the freeze only lands once wall time has also passed.
        for _ in 0..200 {
            std::thread::sleep(Duration::from_millis(1));
            if scan.frozen(claimed(0, 1), 1) {
                break;
            }
        }
        assert!(scan.frozen(claimed(0, 1), 1), "floor elapsed, still frozen");
        // Any progress resets the wall clock along with the streak.
        assert!(!scan.frozen(claimed(0, 2), 1));
        assert!(!scan.frozen(claimed(0, 2), 1), "clock restarted by progress");
    }

    #[test]
    fn tick_gate_fires_every_stride_calls() {
        let mut scan = ReapScan::new(0, 0);
        let mut fired = 0;
        for _ in 0..(3 * TICK_STRIDE) {
            if scan.tick_due() {
                fired += 1;
            }
        }
        assert_eq!(fired, 3, "exactly one inspection per stride");
    }

    #[test]
    fn advance_wraps_and_forgets() {
        let mut scan = ReapScan::new(2, 0);
        assert!(!scan.frozen(claimed(0, 0), 1));
        assert!(scan.frozen(claimed(0, 0), 1));
        scan.advance(3);
        assert_eq!(scan.cursor(), 0, "wraps modulo n");
        assert!(!scan.frozen(claimed(0, 0), 1), "observation forgotten");
    }
}
