//! The operation descriptor (paper Figure 1, `class OpDesc`).

use crate::node::Node;

/// Published record of a thread's current (or last) operation.
///
/// Descriptors are immutable once published in the `state` array; every
/// state transition replaces the whole record with a CAS, exactly as the
/// Java original allocates a fresh `OpDesc` for each transition. The
/// displaced record is retired through the epoch collector.
pub(crate) struct OpDesc<T> {
    /// The operation's priority (smaller = older = helped first).
    pub(crate) phase: i64,
    /// `true` from publication until the operation is linearized *and*
    /// acknowledged (step 2 of the three-step scheme).
    pub(crate) pending: bool,
    /// `true` for enqueue, `false` for dequeue.
    pub(crate) enqueue: bool,
    /// * enqueue: the node carrying the value to insert;
    /// * dequeue: the sentinel preceding the value to return (stage 0 of
    ///   `help_deq`), or null before stage 0 / for an empty-queue result.
    ///
    /// Never dereferenced through this field alone — helpers only compare
    /// it against pointers obtained from a pinned traversal, and the
    /// owner dereferences it only while its own guard (held since before
    /// the pointer was stored) keeps the node alive.
    pub(crate) node: *const Node<T>,
}

impl<T> OpDesc<T> {
    /// The initial per-slot descriptor (constructor, Figure 1 line 33):
    /// phase −1, not pending.
    pub(crate) fn initial() -> Self {
        OpDesc {
            phase: -1,
            pending: false,
            enqueue: true,
            node: std::ptr::null(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_descriptor_is_idle() {
        let d: OpDesc<u32> = OpDesc::initial();
        assert_eq!(d.phase, -1);
        assert!(!d.pending);
        assert!(d.enqueue);
        assert!(d.node.is_null());
    }
}
