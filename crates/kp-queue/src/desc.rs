//! The operation descriptor (paper Figure 1, `class OpDesc`) — packed
//! per-slot edition.
//!
//! The paper's Java presentation allocates a fresh `OpDesc` object for
//! every state transition and lets the GC reclaim displaced ones; §3.3
//! explicitly suggests reusing descriptor objects instead. This module
//! is that enhancement taken to its limit: the descriptor is not a heap
//! object at all but a pair of atomic words owned by the slot —
//!
//! * `ctrl` packs `pending` (bit 0), `enqueue` (bit 1), a 20-bit
//!   version tag (bits 2..22), and the node address divided by its
//!   64-byte alignment (bits 22..64, covering the full 48-bit
//!   user-space address range);
//! * `phase` holds the operation's i64 phase number, written only by
//!   the slot's owner when publishing an operation (helpers never
//!   change an operation's phase, so transitions touch `ctrl` alone).
//!
//! Every descriptor transition is a single CAS on `ctrl` that also
//! bumps the version tag, so a CAS by a helper holding a stale view
//! fails even when the *fields* it read match the current ones — the
//! ABA pattern that node recycling would otherwise enable (a node
//! address can legitimately reappear in a later operation's word).
//!
//! Protocol invariants the packing relies on (established in
//! `crate::queue` and `crate::hp::queue`):
//!
//! 1. **Completed words are final.** Helpers only CAS words whose
//!    `pending` bit is set; a "transition" out of a completed word is
//!    always a no-op (the desired fields already hold) and skips the
//!    CAS entirely (see [`StateSlot::cas_ctrl`]). Hence the owner may
//!    *store* — not CAS — over a completed word when publishing its
//!    next operation, without racing any helper CAS. (The abandoned-
//!    handle reaper's [`StateSlot::try_retire`] is the one audited
//!    exception; it runs only after the owner's idpool lease has been
//!    revoked, so no owner store exists to race.)
//! 2. **Phase before ctrl; ctrl before phase.** The owner stores
//!    `phase` before `ctrl` ([`StateSlot::publish`]); readers load
//!    `ctrl` before `phase` ([`StateSlot::view`]). A mixed-generation
//!    read can therefore only *over*-estimate the phase belonging to
//!    the ctrl word it saw — harmless (a helper declines to help an op
//!    that looks too young; the owner drives its own op regardless) —
//!    and never under-estimate it, which would break the L117–L119
//!    empty-dequeue guard: a helper must not complete a freshly
//!    published dequeue as "empty" using an emptiness observation made
//!    before that dequeue's phase was chosen.
//! 3. **Version wrap.** The tag wraps after 2^20 transitions. A stale
//!    helper is fooled only if it sleeps across exactly k·2^20
//!    transitions of one slot *and* the same field bits reassemble.
//!    Each operation performs at least two transitions, so that is
//!    ≥ ~500k complete operations by the slot's owner within a single
//!    stalled read-to-CAS window of the helper — accepted as
//!    unreachable, like every bounded-tag scheme.

use kp_sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Queue nodes are 64-byte aligned (`#[repr(align(64))]`) so their
/// addresses fit the ctrl word's 42-bit address field.
pub(crate) const NODE_ALIGN: usize = 64;

const PENDING_BIT: u64 = 1;
const ENQUEUE_BIT: u64 = 1 << 1;
const VERSION_SHIFT: u32 = 2;
const VERSION_BITS: u32 = 20;
const VERSION_MASK: u64 = ((1u64 << VERSION_BITS) - 1) << VERSION_SHIFT;
const VERSION_ONE: u64 = 1 << VERSION_SHIFT;
const ADDR_SHIFT: u32 = VERSION_SHIFT + VERSION_BITS;

/// One loaded value of a slot's `ctrl` word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct CtrlWord(u64);

impl CtrlWord {
    fn pack(node_addr: usize, pending: bool, enqueue: bool) -> u64 {
        debug_assert_eq!(
            node_addr % NODE_ALIGN,
            0,
            "node address must be {NODE_ALIGN}-byte aligned"
        );
        debug_assert!(
            (node_addr as u64) < 1 << 48,
            "node address exceeds the packable 48-bit range"
        );
        ((node_addr as u64 >> 6) << ADDR_SHIFT)
            | if pending { PENDING_BIT } else { 0 }
            | if enqueue { ENQUEUE_BIT } else { 0 }
    }

    /// `true` from publication until the operation is linearized *and*
    /// acknowledged (step 2 of the three-step scheme).
    pub(crate) fn pending(self) -> bool {
        self.0 & PENDING_BIT != 0
    }

    /// `true` for enqueue, `false` for dequeue.
    pub(crate) fn enqueue(self) -> bool {
        self.0 & ENQUEUE_BIT != 0
    }

    /// The packed node address:
    ///
    /// * enqueue: the node carrying the value to insert;
    /// * dequeue (epoch variant): the sentinel preceding the value to
    ///   return (stage 0 of `help_deq`), or null before stage 0 / for
    ///   an empty-queue result;
    /// * dequeue (HP variant, completed): the *value node* handed to
    ///   the owner (see `crate::hp`).
    pub(crate) fn node_addr(self) -> usize {
        ((self.0 >> ADDR_SHIFT) << 6) as usize
    }

    pub(crate) fn node_is_null(self) -> bool {
        self.0 >> ADDR_SHIFT == 0
    }

    pub(crate) fn node_ptr<N>(self) -> *mut N {
        self.node_addr() as *mut N
    }

    /// The word with its version tag masked off — what a transition
    /// compares to decide whether it is already done.
    fn fields(self) -> u64 {
        self.0 & !VERSION_MASK
    }

    /// This word's version tag advanced by one, wrapping in place.
    fn next_version(self) -> u64 {
        ((self.0 & VERSION_MASK) + VERSION_ONE) & VERSION_MASK
    }

    #[cfg(test)]
    pub(crate) fn version(self) -> u64 {
        (self.0 & VERSION_MASK) >> VERSION_SHIFT
    }
}

/// One thread's entry in the `state` array: a reusable descriptor.
///
/// Replaces the seed's `Atomic<OpDesc<T>>` (one heap allocation plus an
/// epoch retirement per transition) with two in-place atomic words —
/// the steady-state descriptor path performs zero heap allocations.
pub(crate) struct StateSlot {
    ctrl: AtomicU64,
    phase: AtomicI64,
    /// Liveness heartbeat for the abandoned-handle reaper (DESIGN.md
    /// §13): the slot's owner bumps it once per operation (and on
    /// explicit keepalives). It lives beside the ctrl word rather than
    /// inside it because the packed word has zero free bits
    /// (1 pending + 1 enqueue + 20 version + 42 address = 64); the ctrl
    /// version tag already witnesses descriptor transitions, so the
    /// beat's job is covering fast-path operations and keepalives,
    /// which never touch `ctrl`.
    beat: AtomicU64,
}

impl StateSlot {
    /// The initial per-slot descriptor (constructor, Figure 1 line 33):
    /// phase −1, not pending.
    pub(crate) fn initial() -> Self {
        StateSlot {
            ctrl: AtomicU64::new(CtrlWord::pack(0, false, true)),
            phase: AtomicI64::new(-1),
            beat: AtomicU64::new(0),
        }
    }

    /// The slot's heartbeat counter. Relaxed: the reaper only compares
    /// successive reads for *equality* across a patience window; no
    /// ordering with other memory is implied or needed.
    pub(crate) fn load_beat(&self) -> u64 {
        self.beat.load(Ordering::Relaxed)
    }

    /// Owner-only: advances the heartbeat. Single-writer counter, so a
    /// load + store (no RMW) suffices; Relaxed as for [`load_beat`].
    ///
    /// [`load_beat`]: StateSlot::load_beat
    pub(crate) fn bump_beat(&self) {
        self.beat.store(
            self.beat.load(Ordering::Relaxed).wrapping_add(1),
            Ordering::Relaxed,
        );
    }

    /// Advances the heartbeat from a context that may no longer own the
    /// slot: handle `Drop` bumps *before* checking whether its lease
    /// still holds (so a reaper mid-window restarts its patience), and
    /// by then the slot may already belong to a successor. A real RMW,
    /// unlike [`bump_beat`]'s load + store, cannot swallow the
    /// successor's concurrent increment — a stale dropper's fetch_add
    /// at worst delays the next reap by one observation. Relaxed as for
    /// [`load_beat`].
    ///
    /// [`bump_beat`]: StateSlot::bump_beat
    /// [`load_beat`]: StateSlot::load_beat
    pub(crate) fn bump_beat_shared(&self) {
        self.beat.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn load_ctrl(&self, ord: Ordering) -> CtrlWord {
        CtrlWord(self.ctrl.load(ord))
    }

    /// The slot's phase word alone (`maxPhase()` scans only this).
    pub(crate) fn load_phase(&self, ord: Ordering) -> i64 {
        self.phase.load(ord)
    }

    /// Loads the descriptor as a `(ctrl, phase)` pair, ctrl **first**
    /// (invariant 2 in the module docs). Acquire suffices for the
    /// phase: if the ctrl load observed generation g's word, the phase
    /// store of generation g happens-before it (owner's store order)
    /// and write-read coherence forces this later load to return it or
    /// a newer (higher) phase.
    pub(crate) fn view(&self, ctrl_ord: Ordering) -> (CtrlWord, i64) {
        let w = CtrlWord(self.ctrl.load(ctrl_ord));
        (w, self.phase.load(Ordering::Acquire))
    }

    /// Owner-only: publishes a fresh pending operation (L63/L100).
    ///
    /// A plain store is sound by invariant 1 (the displaced word is
    /// completed, and completed words are final — no helper CAS targets
    /// them). Both stores are SeqCst: the doorway property needs the
    /// phase to be globally visible no later than the pending bit, and
    /// the pending bit to be visible before the owner's subsequent
    /// structural reads (`help_enq`'s tail checks).
    pub(crate) fn publish(&self, phase: i64, node_addr: usize, enqueue: bool) {
        // Own slot; the current word is final, so Relaxed reads the
        // one value any thread could read.
        let cur = CtrlWord(self.ctrl.load(Ordering::Relaxed));
        debug_assert!(!cur.pending(), "publishing over a pending operation");
        self.phase.store(phase, Ordering::SeqCst);
        self.ctrl.store(
            CtrlWord::pack(node_addr, true, enqueue) | cur.next_version(),
            Ordering::SeqCst,
        );
    }

    /// Owner-only: restores the idle descriptor (§3.3 "dummy descriptor
    /// on exit"), with a version bump so stale helper CASes keep
    /// failing after the slot is handed to its next owner.
    pub(crate) fn reset(&self) {
        let cur = CtrlWord(self.ctrl.load(Ordering::Relaxed));
        self.phase.store(-1, Ordering::SeqCst);
        self.ctrl.store(
            CtrlWord::pack(0, false, true) | cur.next_version(),
            Ordering::SeqCst,
        );
    }

    /// One descriptor state transition: CAS `cur → (fields, ver+1)`,
    /// keeping the phase (helpers never change an operation's phase).
    ///
    /// When the requested fields already hold in `cur`, the transition
    /// is reported complete *without* a CAS. This "no-op skip" is
    /// load-bearing, not an optimization: it is what makes invariant 1
    /// (completed words are final) true, which in turn makes the
    /// owner's plain-store `publish` race-free.
    pub(crate) fn cas_ctrl(
        &self,
        cur: CtrlWord,
        node_addr: usize,
        pending: bool,
        enqueue: bool,
    ) -> bool {
        let fields = CtrlWord::pack(node_addr, pending, enqueue);
        if cur.fields() == fields {
            return true;
        }
        debug_assert!(
            cur.pending(),
            "only pending descriptors are ever transitioned (invariant 1)"
        );
        self.ctrl
            .compare_exchange(
                cur.0,
                fields | cur.next_version(),
                Ordering::SeqCst,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Reaper-only: conditionally retires the descriptor, CASing the
    /// exact word `cur` (version included) to the idle word with a
    /// bumped version. Unlike [`cas_ctrl`](StateSlot::cas_ctrl) there is
    /// no no-op skip and the word need not be pending: the CAS is the
    /// *election* — among racing reapers of the same abandoned slot (a
    /// stalled reaper plus its takeover successor), exactly one wins,
    /// and only the winner may perform the destructive claim of the
    /// victim's dequeue result.
    ///
    /// The slot's `phase` is deliberately left untouched: a stale-phase
    /// idle word is harmless (helpers ignore non-pending descriptors
    /// and `maxPhase` stays monotone), whereas a late `phase` store by
    /// a stalled reaper could land under a successor lease's freshly
    /// published operation and break the phase-before-ctrl invariant.
    ///
    /// This is the one exception to invariant 1 (helpers never CAS
    /// completed words): it is sound because the reap protocol
    /// (`idpool::begin_reap`) has revoked the owner's lease first, so no
    /// owner store can race it — an owner publishing after its lease
    /// was revoked is a lease-contract violation (DESIGN.md §13).
    pub(crate) fn try_retire(&self, cur: CtrlWord) -> bool {
        debug_assert!(
            !cur.pending(),
            "reap must complete the pending op before retiring the slot"
        );
        self.ctrl
            .compare_exchange(
                cur.0,
                CtrlWord::pack(0, false, true) | cur.next_version(),
                Ordering::SeqCst,
                Ordering::Relaxed,
            )
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_descriptor_is_idle() {
        let s = StateSlot::initial();
        let (w, phase) = s.view(Ordering::SeqCst);
        assert_eq!(phase, -1);
        assert!(!w.pending());
        assert!(w.enqueue());
        assert!(w.node_is_null());
        assert_eq!(w.node_addr(), 0);
    }

    #[test]
    fn pack_roundtrips_fields_and_address() {
        let s = StateSlot::initial();
        let addr = 0x7f12_3456_70c0usize; // 64-byte aligned, < 2^48
        s.publish(41, addr, false);
        let (w, phase) = s.view(Ordering::SeqCst);
        assert_eq!(phase, 41);
        assert!(w.pending());
        assert!(!w.enqueue());
        assert_eq!(w.node_addr(), addr);
        assert!(!w.node_is_null());
        assert_eq!(w.node_ptr::<u64>() as usize, addr);
    }

    #[test]
    fn transitions_bump_the_version() {
        let s = StateSlot::initial();
        s.publish(0, 64, true);
        let w0 = s.load_ctrl(Ordering::SeqCst);
        assert!(s.cas_ctrl(w0, 64, false, true));
        let w1 = s.load_ctrl(Ordering::SeqCst);
        assert_eq!(w1.version(), (w0.version() + 1) % (1 << VERSION_BITS));
    }

    #[test]
    fn noop_transition_skips_the_cas() {
        let s = StateSlot::initial();
        s.publish(7, 128, true);
        let w = s.load_ctrl(Ordering::SeqCst);
        assert!(s.cas_ctrl(w, 128, false, true), "real transition");
        let done = s.load_ctrl(Ordering::SeqCst);
        // Same fields again: must succeed without touching the word.
        assert!(s.cas_ctrl(done, 128, false, true));
        assert_eq!(s.load_ctrl(Ordering::SeqCst), done, "no version bump");
    }

    #[test]
    fn stale_cas_fails_after_recycling() {
        // The ABA scenario the version tag exists to defeat: a helper
        // reads the word, stalls while the slot runs k complete
        // operations that reassemble the *same field bits* (possible
        // once nodes are recycled), then attempts its CAS.
        let s = StateSlot::initial();
        s.publish(1, 192, true);
        let stale = s.load_ctrl(Ordering::SeqCst); // helper's stale view
        for i in 0..3 {
            // complete + republish with the same (recycled) node addr
            let w = s.load_ctrl(Ordering::SeqCst);
            assert!(s.cas_ctrl(w, 192, false, true));
            s.publish(2 + i, 192, true);
        }
        let now = s.load_ctrl(Ordering::SeqCst);
        assert_eq!(now.fields(), stale.fields(), "fields reassembled");
        assert_ne!(now, stale, "but the version differs");
        assert!(
            !s.cas_ctrl(stale, 192, false, true),
            "stale helper CAS must fail"
        );
        assert_eq!(s.load_ctrl(Ordering::SeqCst), now, "word untouched");
    }

    #[test]
    fn reset_is_idle_with_a_version_bump() {
        let s = StateSlot::initial();
        s.publish(9, 256, false);
        let w = s.load_ctrl(Ordering::SeqCst);
        assert!(s.cas_ctrl(w, 256, false, false));
        let before = s.load_ctrl(Ordering::SeqCst);
        s.reset();
        let (after, phase) = s.view(Ordering::SeqCst);
        assert_eq!(phase, -1);
        assert!(!after.pending());
        assert!(after.enqueue());
        assert!(after.node_is_null());
        assert_ne!(after, before, "reset must bump the version");
    }

    #[test]
    fn try_retire_is_an_exclusive_election() {
        let s = StateSlot::initial();
        s.publish(3, 320, true);
        let w = s.load_ctrl(Ordering::SeqCst);
        assert!(s.cas_ctrl(w, 320, false, true), "complete the op first");
        let completed = s.load_ctrl(Ordering::SeqCst);
        assert!(s.try_retire(completed), "first reaper wins");
        let idle = s.load_ctrl(Ordering::SeqCst);
        assert!(!idle.pending() && idle.node_is_null());
        assert_ne!(idle, completed, "retire bumps the version");
        assert!(
            !s.try_retire(completed),
            "a stalled co-reaper's retire must lose the election"
        );
        // Even on an already-idle word the CAS elects exactly one winner.
        assert!(s.try_retire(idle), "idle slots are still retireable once");
        assert!(!s.try_retire(idle));
    }

    #[test]
    fn heartbeat_is_owner_monotonic() {
        let s = StateSlot::initial();
        assert_eq!(s.load_beat(), 0);
        s.bump_beat();
        s.bump_beat();
        assert_eq!(s.load_beat(), 2);
    }

    #[test]
    fn version_wraps_in_place() {
        let w = CtrlWord(CtrlWord::pack(0x4000, true, true) | VERSION_MASK);
        let bumped = CtrlWord(w.fields() | w.next_version());
        assert_eq!(bumped.version(), 0, "wraps to zero");
        assert_eq!(bumped.node_addr(), 0x4000, "without spilling into the address");
        assert!(bumped.pending());
    }

    mod proptests {
        use super::super::*;
        use proptest::prelude::*;

        /// A 64-byte-aligned address inside the packable 48-bit range.
        fn aligned_addr() -> impl Strategy<Value = usize> {
            (0u64..(1 << 42)).prop_map(|blocks| (blocks << 6) as usize)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            #[test]
            fn pack_roundtrips_every_field(
                addr in aligned_addr(),
                pending in any::<bool>(),
                enqueue in any::<bool>(),
                version in 0u64..(1 << VERSION_BITS),
            ) {
                let w = CtrlWord(CtrlWord::pack(addr, pending, enqueue) | (version << VERSION_SHIFT));
                prop_assert_eq!(w.node_addr(), addr);
                prop_assert_eq!(w.pending(), pending);
                prop_assert_eq!(w.enqueue(), enqueue);
                prop_assert_eq!(w.version(), version);
                prop_assert_eq!(w.node_is_null(), addr == 0);
            }

            #[test]
            fn version_bump_wraps_mod_2_pow_20_and_never_leaks(
                addr in aligned_addr(),
                pending in any::<bool>(),
                enqueue in any::<bool>(),
                version in 0u64..(1 << VERSION_BITS),
                bumps in 1u64..2048,
            ) {
                let mut w = CtrlWord(
                    CtrlWord::pack(addr, pending, enqueue) | (version << VERSION_SHIFT),
                );
                for _ in 0..bumps {
                    w = CtrlWord(w.fields() | w.next_version());
                }
                prop_assert_eq!(
                    w.version(),
                    (version + bumps) & ((1 << VERSION_BITS) - 1),
                    "version advances mod 2^20"
                );
                // The tag never spills into neighbouring fields: even
                // across wraparound the address and flag bits are intact.
                prop_assert_eq!(w.node_addr(), addr);
                prop_assert_eq!(w.pending(), pending);
                prop_assert_eq!(w.enqueue(), enqueue);
            }

            #[test]
            fn unpacked_addresses_are_always_node_aligned(
                raw in 0u64..u64::MAX,
            ) {
                // Whatever bit pattern a load observes, the decoded
                // address is a multiple of NODE_ALIGN — the decoder
                // cannot fabricate a misaligned node pointer.
                let w = CtrlWord(raw);
                prop_assert_eq!(w.node_addr() % NODE_ALIGN, 0);
            }
        }
    }
}
