//! Fault-injection hooks, compiled away unless the `chaos` cargo
//! feature is enabled.
//!
//! Every atomic step of the protocol is labeled with an
//! `inject!("site")` call placed immediately *before* the step, so a
//! fault plan (see the `chaos` crate) can stall or kill a thread in the
//! window between any two steps — the schedules the paper's helping
//! scheme exists to survive. With the feature off the macro expands to
//! nothing and the op-scope functions are empty `#[inline(always)]`
//! bodies, so the production queue pays zero cost.
//!
//! Site names (`kp.*` for the epoch variant, `kp_hp.*` for the
//! hazard-pointer variant):
//!
//! | site | window it opens |
//! |---|---|
//! | `publish` | after phase selection, before the L63/L100 descriptor publish |
//! | `append` | before the L74 `next` CAS (enqueue step 1) |
//! | `clear_pending.enq` | before the L92–93 descriptor CAS (enqueue step 2) |
//! | `swing_tail` | before the L94 tail CAS (enqueue step 3) |
//! | `bind_sentinel` | before the L129–134 stage-0 descriptor CAS |
//! | `lock_sentinel` | before the L135 `deqTid` CAS (dequeue step 1) |
//! | `clear_pending.deq` | after observing a locked sentinel, before the L148–149 CAS (dequeue step 2) |
//! | `clear_pending.deq_empty` | before the L118–120 empty-result CAS |
//! | `swing_head` | before the L150 head CAS (dequeue step 3) |
//! | `fast.enq` | top of each fast-path enqueue iteration, before its append CAS attempt (so a plan can hit every retry) |
//! | `fast.swing_tail` | after a fast append won, before its best-effort tail CAS |
//! | `fast.deq` | top of each fast-path dequeue iteration, before its `deqTid` CAS attempt |
//! | `fast.swing_head` | after a fast lock won (value already taken), before its best-effort head CAS |
//! | `fast.demote` | after fast-path exhaustion, before the slow-path descriptor publish (enqueue: the private node is already rebranded with the real tid) |
//! | `reap.adopt` | reap rights won (`begin_reap`/`takeover_reap` done), before the victim's descriptor is read for adoption |
//! | `reap.retire` | victim's op adopted and tail/head driven, before the `try_retire` election CAS |
//! | `reap.finish` | destructive steps done (or election lost), before `finish_reap` returns the lease — a kill here strands the slot in `Reaping` for the takeover path |

#[cfg(feature = "chaos")]
macro_rules! inject {
    ($site:expr) => {
        ::chaos::hit($site)
    };
}

#[cfg(not(feature = "chaos"))]
macro_rules! inject {
    ($site:expr) => {};
}

pub(crate) use inject;

/// Watchdog: the calling thread is entering a queue operation.
#[cfg(feature = "chaos")]
pub(crate) fn op_begin() {
    ::chaos::op_begin();
}

#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub(crate) fn op_begin() {}

/// Watchdog: the operation entered via [`op_begin`] completed normally.
/// Deliberately not a drop guard: a killed operation never completes,
/// so its partial step count must not be reported.
#[cfg(feature = "chaos")]
pub(crate) fn op_end() {
    ::chaos::op_end();
}

#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub(crate) fn op_end() {}
