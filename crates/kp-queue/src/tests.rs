//! Unit tests for the wait-free queue, run over every paper variant.

use crate::{Config, ConcurrentQueue, HelpPolicy, PhasePolicy, WfQueue};
use queue_traits::testing;

/// All four paper variants plus the random-chunk and validation
/// enhancements — every behavioural test runs on each.
fn all_configs() -> Vec<Config> {
    vec![
        Config::base(),
        Config::opt1(),
        Config::opt2(),
        Config::opt_both(),
        Config::base().with_validation(),
        Config::opt_both().with_validation(),
        Config::base().with_help(HelpPolicy::RandomChunk { chunk: 1 }),
        Config::opt_both().with_help(HelpPolicy::Cyclic { chunk: 3 }),
        Config::fast(),
        Config::fast().with_starvation_patience(4),
        Config::fast().with_fast_path(1),
    ]
}

#[test]
fn sequential_fifo_all_variants() {
    for cfg in all_configs() {
        let q: WfQueue<u64> = WfQueue::with_config(4, cfg);
        testing::check_sequential_fifo(&q);
    }
}

#[test]
fn mpmc_conservation_all_variants() {
    for cfg in all_configs() {
        let q: WfQueue<u64> = WfQueue::with_config(8, cfg);
        testing::check_mpmc_conservation(&q, 4, 4, testing::scaled(3_000));
    }
}

#[test]
fn owned_payloads_base_and_opt() {
    for cfg in [Config::base(), Config::opt_both()] {
        let q: WfQueue<Box<u64>> = WfQueue::with_config(4, cfg);
        testing::check_owned_payloads(&q, 4);
    }
}

#[test]
fn registration_capacity_is_enforced() {
    let q: WfQueue<u64> = WfQueue::new(3);
    testing::check_registration_capacity(&q, 3);
    assert_eq!(q.thread_capacity(), 3);
}

#[test]
fn empty_dequeue_returns_none_repeatedly() {
    let q: WfQueue<u64> = WfQueue::with_config(2, Config::base());
    let mut h = q.register().unwrap();
    for _ in 0..10 {
        assert_eq!(h.dequeue(), None);
    }
    h.enqueue(1);
    assert_eq!(h.dequeue(), Some(1));
    assert_eq!(h.dequeue(), None);
}

#[test]
fn values_survive_handle_churn() {
    // Handles coming and going (virtual-ID reuse, §3.3) must not disturb
    // resident values.
    let q: WfQueue<u64> = WfQueue::new(2);
    {
        let mut h = q.register().unwrap();
        for i in 0..50 {
            h.enqueue(i);
        }
    }
    {
        let mut h = q.register().unwrap();
        for i in 0..25 {
            assert_eq!(h.dequeue(), Some(i));
        }
    }
    let mut h = q.register().unwrap();
    for i in 25..50 {
        assert_eq!(h.dequeue(), Some(i));
    }
    assert_eq!(h.dequeue(), None);
}

#[test]
fn len_and_is_empty() {
    let q: WfQueue<u64> = WfQueue::new(2);
    assert!(q.is_empty());
    assert_eq!(q.len_approx(), 0);
    let mut h = q.register().unwrap();
    for i in 0..7 {
        h.enqueue(i);
    }
    assert!(!q.is_empty());
    assert_eq!(q.len_approx(), 7);
    h.dequeue();
    assert_eq!(q.len_approx(), 6);
}

#[test]
fn drop_releases_resident_values() {
    use kp_sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    struct CountDrop(Arc<AtomicUsize>);
    impl Drop for CountDrop {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let q: WfQueue<CountDrop> = WfQueue::new(2);
        let mut h = q.register().unwrap();
        for _ in 0..100 {
            h.enqueue(CountDrop(drops.clone()));
        }
        for _ in 0..30 {
            drop(h.dequeue());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 30);
        drop(h);
    }
    assert_eq!(
        drops.load(Ordering::SeqCst),
        100,
        "queue drop must free the remaining 70 values exactly once"
    );
}

#[test]
fn phase_numbers_increase_monotonically() {
    // The doorway property behind wait-freedom: each operation's phase
    // exceeds all phases chosen before it (single-threaded here, so the
    // property must hold exactly).
    for phase_policy in [PhasePolicy::MaxScan, PhasePolicy::AtomicCounter] {
        let q: WfQueue<u64> =
            WfQueue::with_config(4, Config::base().with_phase(phase_policy));
        let mut h = q.register().unwrap();
        let mut last = -1;
        for i in 0..20 {
            let pending = h.begin_enqueue_unhelped(i);
            let ph = pending.phase();
            assert!(ph > last, "phase must increase: {ph} after {last}");
            last = ph;
            pending.finish();
        }
    }
}

#[test]
fn stalled_enqueue_is_completed_by_helper() {
    // The central helping property: a thread that stalls right after
    // publishing its descriptor (paper L63) still gets its operation
    // applied, by any other thread running an operation with a larger
    // phase.
    let q: WfQueue<u64> = WfQueue::with_config(4, Config::base());
    let mut stalled = q.register().unwrap();
    let mut helper = q.register().unwrap();

    let pending = stalled.begin_enqueue_unhelped(42);
    assert!(pending.is_pending());

    helper.enqueue(7); // helper's phase > stalled's ⇒ must help first

    assert!(
        !pending.is_pending(),
        "helper must have completed the stalled enqueue"
    );
    // FIFO: the stalled enqueue (42) linearized before the helper's (7).
    assert_eq!(helper.dequeue(), Some(42));
    assert_eq!(helper.dequeue(), Some(7));
    pending.finish();
    assert!(q.stats().helped_appends >= 1, "help was counted");
}

#[test]
fn stalled_dequeue_is_completed_by_helper() {
    let q: WfQueue<u64> = WfQueue::with_config(4, Config::base());
    let mut stalled = q.register().unwrap();
    let mut helper = q.register().unwrap();

    helper.enqueue(1);
    helper.enqueue(2);

    let pending = stalled.begin_dequeue_unhelped();
    assert!(pending.is_pending());

    helper.enqueue(3); // any op with larger phase helps

    assert!(
        !pending.is_pending(),
        "helper must have completed the stalled dequeue"
    );
    // The stalled dequeue linearized before helper.enqueue(3), so it
    // must return the then-head: 1.
    assert_eq!(pending.finish(), Some(1));
    assert_eq!(helper.dequeue(), Some(2));
    assert_eq!(helper.dequeue(), Some(3));
    assert!(q.stats().helped_locks >= 1);
}

#[test]
fn stalled_dequeue_on_empty_queue_observes_empty() {
    let q: WfQueue<u64> = WfQueue::with_config(4, Config::base());
    let mut stalled = q.register().unwrap();
    let mut helper = q.register().unwrap();

    let pending = stalled.begin_dequeue_unhelped();
    // A helper dequeue on the empty queue resolves the stalled op as
    // "empty" (paper L116–121) rather than handing it a later value.
    assert_eq!(helper.dequeue(), None);
    assert!(!pending.is_pending());
    helper.enqueue(9); // arrives after the stalled deq linearized empty
    assert_eq!(pending.finish(), None, "op linearized on the empty queue");
    assert_eq!(helper.dequeue(), Some(9));
}

#[test]
fn abandoned_pending_op_is_driven_to_completion() {
    let q: WfQueue<u64> = WfQueue::with_config(2, Config::base());
    let mut h = q.register().unwrap();
    {
        let pending = h.begin_enqueue_unhelped(5);
        drop(pending); // Drop must complete the operation
    }
    assert_eq!(h.dequeue(), Some(5));
}

#[test]
fn helping_occurs_under_contention() {
    // Statistical version of the stalled-thread tests: with many threads
    // hammering a base-config queue, some linearization steps are
    // executed by helpers. The allocation-free hot path made single
    // rounds short enough that, under an unlucky scheduler, no two ops
    // overlap — so hammer in bounded rounds until helping shows up.
    let q: WfQueue<u64> = WfQueue::with_config(8, Config::base());
    let mut rounds = 0u64;
    while rounds < 10 {
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut h = q.register().unwrap();
                    for i in 0..testing::scaled(20_000) as u64 {
                        h.enqueue(i);
                        h.dequeue();
                    }
                });
            }
        });
        rounds += 1;
        if q.stats().helped_appends + q.stats().helped_locks > 0 {
            break;
        }
    }
    let stats = q.stats();
    assert_eq!(stats.ops(), rounds * 8 * 2 * testing::scaled(20_000) as u64);
    assert!(
        stats.helped_appends + stats.helped_locks > 0,
        "contention must produce at least some helped operations: {stats:?}"
    );
}

#[test]
fn cyclic_chunk_never_starves_own_op() {
    // With chunk=1 and many slots, a thread mostly helps others; its own
    // op must still complete every time.
    let q: WfQueue<u64> = WfQueue::with_config(16, Config::opt_both());
    let mut h = q.register().unwrap();
    for i in 0..1000 {
        h.enqueue(i);
        assert_eq!(h.dequeue(), Some(i));
    }
}

#[test]
fn lemma_1_and_2_exactly_once() {
    // The paper's Lemmas 1 and 2: for every enqueue, step 1 (the L74
    // append CAS) succeeds exactly once; for every successful dequeue,
    // step 1 (the L135 deqTid CAS) succeeds exactly once — even though
    // many helpers race to execute those steps. At quiescence the global
    // counters must therefore match the operation counts exactly.
    for cfg in [Config::base(), Config::opt1(), Config::opt2(), Config::opt_both()] {
        let q: WfQueue<u64> = WfQueue::with_config(8, cfg);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..testing::scaled(5_000) as u64 {
                        if (t + i) % 3 == 0 {
                            // bursts of dequeues drive the queue empty
                            h.dequeue();
                        } else {
                            h.enqueue(t * 100_000 + i);
                        }
                    }
                });
            }
        });
        let stats = q.stats();
        assert_eq!(
            stats.appends_total, stats.enqueues,
            "Lemma 1 violated ({cfg:?}): {stats:?}"
        );
        assert_eq!(
            stats.locks_total,
            stats.dequeues - stats.empty_dequeues,
            "Lemma 2 violated ({cfg:?}): {stats:?}"
        );
        // Cross-check against the structure: resident = in - out.
        let resident = (stats.enqueues - (stats.dequeues - stats.empty_dequeues)) as usize;
        assert_eq!(q.len_approx(), resident);
    }
}

#[test]
fn exit_with_pending_enqueue_publishes_dummy_descriptor() {
    // §3.3 "dummy descriptor on exit": a handle dropped while its enqueue
    // is still pending must complete the operation and leave the state
    // slot idle, so the value lands and the slot is immediately reusable.
    for cfg in [Config::base(), Config::opt_both()] {
        let q: WfQueue<u64> = WfQueue::with_config(2, cfg);
        {
            let mut h = q.register().unwrap();
            h.enqueue(1);
            // Walk away mid-operation: descriptor left pending, as if the
            // thread died right after the paper's L63 publish.
            h.begin_enqueue_unhelped(2).abandon();
        } // handle Drop runs the exit cleanup here
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), Some(1));
        assert_eq!(h.dequeue(), Some(2), "abandoned enqueue must land");
        assert_eq!(h.dequeue(), None);
    }
}

#[test]
fn exit_with_pending_dequeue_publishes_dummy_descriptor() {
    let q: WfQueue<u64> = WfQueue::new(2);
    {
        let mut h = q.register().unwrap();
        for i in 0..3 {
            h.enqueue(i);
        }
        h.begin_dequeue_unhelped().abandon();
    } // Drop completes the dequeue; value 0 is consumed-and-discarded
    let mut h = q.register().unwrap();
    assert_eq!(h.dequeue(), Some(1), "FIFO intact after exit cleanup");
    assert_eq!(h.dequeue(), Some(2));
    assert_eq!(h.dequeue(), None);
}

#[test]
fn slot_reused_after_mid_operation_exit_does_not_wedge() {
    // The wedge this guards against: with capacity 1, the departing
    // thread's slot is *guaranteed* to be reused. If its pending
    // descriptor were still in place (or an orphaned node appended with
    // no matching descriptor), every subsequent operation would spin in
    // help_finish_enq forever.
    let q: WfQueue<u64> = WfQueue::new(1);
    for round in 0..10u64 {
        let mut h = q.register().expect("slot must be reclaimable");
        assert_eq!(h.tid(), 0, "capacity-1 pool always hands out slot 0");
        h.begin_enqueue_unhelped(round).abandon();
        drop(h);
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), Some(round), "no wedge, value present");
        assert_eq!(h.dequeue(), None);
    }
}

#[test]
fn fast_path_uncontended_ops_never_fall_back() {
    // Single-threaded, fast path on: every CAS wins first try, so every
    // operation completes fast and the slow path never runs.
    let q: WfQueue<u64> = WfQueue::with_config(4, Config::fast());
    let mut h = q.register().unwrap();
    for i in 0..500 {
        h.enqueue(i);
        assert_eq!(h.dequeue(), Some(i), "fast path must preserve FIFO");
    }
    assert_eq!(h.dequeue(), None);
    let fp = h.fast_path_stats();
    assert_eq!(fp.fast_completions, 1001, "500 enq + 500 deq + 1 empty deq");
    assert_eq!(fp.slow_ops, 0);
    assert_eq!(fp.fallbacks(), 0);
    assert_eq!(fp.fallback_rate(), 0.0);
    // The fast append/lock CASes feed the same Lemma 1/2 counters as
    // the slow path's steps.
    let stats = q.stats();
    assert_eq!(stats.appends_total, stats.enqueues);
    assert_eq!(stats.locks_total, stats.dequeues - stats.empty_dequeues);
}

#[test]
fn set_fast_path_zero_pins_handle_to_slow_path() {
    let q: WfQueue<u64> = WfQueue::with_config(4, Config::fast());
    let mut h = q.register().unwrap();
    h.set_fast_path(0);
    for i in 0..100 {
        h.enqueue(i);
        assert_eq!(h.dequeue(), Some(i));
    }
    let fp = h.fast_path_stats();
    assert_eq!(fp.fast_completions, 0, "pinned handle must never go fast");
    assert_eq!(fp.slow_ops, 200);
}

#[test]
fn fast_path_stats_exposed_through_trait() {
    let q: WfQueue<u64> = WfQueue::with_config(2, Config::fast());
    let mut h = q.register().unwrap();
    h.enqueue(1);
    let fp = queue_traits::QueueHandle::fast_path_stats(&h)
        .expect("kp handles report fast-path stats");
    assert_eq!(fp.fast_completions + fp.slow_ops, 1);
}

#[test]
fn mixed_fast_and_slow_handles_conserve_values() {
    // Half the threads run fast-path-first, half are pinned slow-only;
    // the descriptor protocol must linearize both kinds together.
    let q: WfQueue<u64> = WfQueue::with_config(8, Config::fast().with_fast_path(2));
    let per = testing::scaled(4_000) as u64;
    let total = std::sync::Mutex::new(0u64);
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let q = &q;
            let total = &total;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                if t % 2 == 0 {
                    h.set_fast_path(0); // slow-only
                }
                let mut sum = 0u64;
                for i in 0..per {
                    h.enqueue(t * per + i);
                    if let Some(v) = h.dequeue() {
                        sum += v;
                    }
                }
                let fp = h.fast_path_stats();
                if t % 2 == 0 {
                    assert_eq!(fp.fast_completions, 0);
                    assert_eq!(fp.slow_ops, 2 * per);
                } else {
                    assert_eq!(
                        fp.fast_completions + fp.fallbacks(),
                        fp.fast_completions + fp.fast_exhaustions + fp.fast_starvation_demotions
                    );
                }
                *total.lock().unwrap() += sum;
            });
        }
    });
    // Drain what's left and check conservation of the value sum.
    let mut rest = 0u64;
    let mut h = q.register().unwrap();
    while let Some(v) = h.dequeue() {
        rest += v;
    }
    let expect: u64 = (0..8 * per).sum();
    assert_eq!(*total.lock().unwrap() + rest, expect, "values conserved");
    let stats = q.stats();
    assert_eq!(stats.appends_total, stats.enqueues, "Lemma 1 (mixed)");
    assert_eq!(
        stats.locks_total,
        stats.dequeues - stats.empty_dequeues,
        "Lemma 2 (mixed)"
    );
}

#[test]
fn starvation_patience_demotes_into_helping() {
    // A peer publishes a descriptor and stalls; a fast handle with tiny
    // patience must notice it within `patience` completions, demote
    // itself, and complete the stalled op via the slow path's helping.
    let q: WfQueue<u64> =
        WfQueue::with_config(4, Config::fast().with_starvation_patience(2));
    let mut stalled = q.register().unwrap();
    let mut fast = q.register().unwrap();
    let pending = stalled.begin_enqueue_unhelped(42);
    assert!(pending.is_pending());
    // Worst case: patience completions per peeked slot, over all slots.
    for i in 0..100 {
        fast.enqueue(1_000 + i);
        if !pending.is_pending() {
            break;
        }
    }
    assert!(
        !pending.is_pending(),
        "starvation peek must demote the fast handle into helping"
    );
    assert!(fast.fast_path_stats().fast_starvation_demotions >= 1);
    pending.finish();
    // Fast ops that completed before the demotion legitimately overtook
    // the (then-unlinearized) stalled enqueue; 42 must still be present
    // exactly once.
    let mut drained = Vec::new();
    while let Some(v) = fast.dequeue() {
        drained.push(v);
    }
    assert_eq!(drained.iter().filter(|&&v| v == 42).count(), 1);
}

#[test]
fn queue_debug_format_mentions_config() {
    let q: WfQueue<u64> = WfQueue::new(2);
    let s = format!("{q:?}");
    assert!(s.contains("WfQueue"), "{s}");
    assert!(s.contains("max_threads"), "{s}");
}

#[test]
fn many_variants_cross_thread_smoke() {
    // 2 producers + 2 consumers on every variant, moving enough values
    // to force multiple epoch collections.
    for cfg in all_configs() {
        let q: WfQueue<u64> = WfQueue::with_config(4, cfg);
        testing::check_mpmc_conservation(&q, 2, 2, testing::scaled(5_000));
        assert!(q.is_empty());
    }
}

/// The counter-derived overload gauges: exact at quiescence on every
/// variant, `empty_dequeues` excluded from drain, pressure monotone.
#[cfg(feature = "stats")]
#[test]
fn depth_hint_tracks_residency_at_quiescence() {
    for cfg in all_configs() {
        let q: WfQueue<u64> = WfQueue::with_config(2, cfg);
        assert_eq!(q.depth_hint(), Some(0));
        assert_eq!(q.drained_hint(), Some(0));
        assert_eq!(q.capacity_hint(), None, "KP engine is unbounded");
        let mut h = q.register().unwrap();
        for i in 0..10 {
            h.enqueue(i);
        }
        assert_eq!(q.depth_hint(), Some(10));
        for _ in 0..4 {
            h.dequeue().unwrap();
        }
        assert_eq!(q.depth_hint(), Some(6));
        assert_eq!(q.drained_hint(), Some(4));
        // Empty dequeues complete but carry no value: gauge unmoved.
        while h.dequeue().is_some() {}
        assert_eq!(h.dequeue(), None);
        assert_eq!(q.depth_hint(), Some(0));
        assert_eq!(q.drained_hint(), Some(10));
    }
}

/// With `stats` compiled out the gauges must report "cannot say", not a
/// fake zero — the channel's admission control keys off this.
#[cfg(not(feature = "stats"))]
#[test]
fn depth_hint_unknown_without_stats() {
    let q: WfQueue<u64> = WfQueue::new(2);
    assert_eq!(q.depth_hint(), None);
    assert_eq!(q.drained_hint(), None);
    assert_eq!(q.pressure_hint(), 0);
}
