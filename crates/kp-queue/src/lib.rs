//! The Kogan–Petrank wait-free MPMC FIFO queue (PPoPP 2011) — the
//! paper's primary contribution, transcribed from the Java listings of
//! Figures 1–6 into Rust.
//!
//! # Algorithm
//!
//! The queue extends Michael & Scott's lock-free queue with a
//! priority-based *helping* scheme:
//!
//! 1. A thread starting an operation picks a **phase** number greater
//!    than (or equal to — ties are benign) every phase picked before it,
//!    Bakery-doorway style, and publishes an operation descriptor in the
//!    shared `state` array.
//! 2. It then **helps** every thread whose descriptor is pending with a
//!    phase ≤ its own (so operations older than it are finished before it
//!    returns), and finally returns once its own descriptor is no longer
//!    pending.
//! 3. Each operation is split into **three atomic steps** so that any
//!    number of helpers can share the work without applying it twice:
//!    append-node / clear-pending / swing-tail for `enqueue`, and
//!    lock-sentinel (`deqTid` CAS) / clear-pending / swing-head for
//!    `dequeue`, with an extra descriptor-points-at-sentinel stage that
//!    resolves the empty-queue race.
//!
//! Because a thread returns only after every operation with a phase not
//! exceeding its own is linearized, each call completes in a bounded
//! number of steps regardless of scheduling: **wait-freedom**.
//!
//! # Variants
//!
//! The paper evaluates the base algorithm plus two optimizations (§3.3),
//! all expressible through [`Config`]:
//!
//! | Paper label | Constructor | Meaning |
//! |---|---|---|
//! | `base WF` | [`Config::base()`] | help all peers; phase = `maxPhase()+1` scan |
//! | `opt WF (1)` | [`Config::opt1()`] | help at most one peer per operation, cyclically |
//! | `opt WF (2)` | [`Config::opt2()`] | phase from an atomic counter |
//! | `opt WF (1+2)` | [`Config::opt_both()`] | both |
//!
//! plus [`HelpPolicy::RandomChunk`] (the paper's "random chunk" remark,
//! probabilistic wait-freedom) and the `validate_before_cas` enhancement.
//!
//! # Memory management
//!
//! The paper's base algorithm leans on the Java GC; §3.4 discusses
//! non-GC runtimes, and §3.3 recommends reusing descriptor objects
//! rather than allocating per transition. This implementation follows
//! both through to an **allocation-free steady state**:
//!
//! * **Descriptors are not heap objects.** Each `state[tid]` entry is a
//!   cache-padded pair of atomic words (packed
//!   pending/enqueue/node-address plus a version tag, and the phase) —
//!   see `desc.rs`. Transitions are in-place CASes that bump the
//!   version, so a helper CAS armed with a stale view fails even when
//!   node recycling makes the *fields* reappear (the ABA the seed's
//!   alloc-per-transition scheme dodged by address freshness).
//! * **Nodes are recycled.** Sentinels unlinked by a thread's own head
//!   swing enter a per-handle cache tagged with the retirement epoch
//!   and are reused once `tag + 2 <= global_epoch()` — exactly the
//!   maturity rule [crossbeam-epoch] applies before *freeing*, so
//!   recycling is sound wherever freeing would have been. Overflow and
//!   handle exit fall back to `defer_destroy`.
//!
//! Epoch reclamation is lock-free rather than wait-free; the paper's
//! fully wait-free answer (hazard pointers) backs the [`hp`] variant in
//! this crate and the `ms-queue` crate — see DESIGN.md for the
//! substitution rationale and the full descriptor-memory discussion.
//!
//! # Thread identities
//!
//! `NUM_THRDS` in the paper becomes the `max_threads` constructor
//! argument. Threads acquire a slot by calling [`WfQueue::register`],
//! which draws a virtual ID from a wait-free long-lived-renaming pool
//! (`idpool`), the relaxation §3.3 describes; dropping the handle
//! releases the slot.
//!
//! # Memory ordering
//!
//! The seed used blanket `SeqCst`, matching the Java `volatile`
//! semantics of the paper's listings. The orderings have since been
//! audited; the surprising outcome is that most hot loads must *stay*
//! SeqCst once descriptors and nodes are reused:
//!
//! | Site | Ordering | Why |
//! |---|---|---|
//! | phase scan (`max_phase`) | SeqCst | Bakery doorway: every phase chosen before the scan must be visible to it (Lemma 1) |
//! | `is_still_pending`, `help_index` gate | SeqCst | helping obligation: an Acquire-stale "not pending" would let helpers decline to help a pending op (Lemma 2) |
//! | L73 descriptor read in `help_enq` | SeqCst | single-read append argument, extended to recycling (see `queue.rs`) |
//! | L90/L146 reads in `help_finish_*` | SeqCst | with reuse, an Acquire-stale *completed* word can equal the transition target field-for-field and no-op-skip step 2, swinging tail/head while the real op is still pending |
//! | slot publish/reset/transition | SeqCst | doorway visibility + the SC chains above terminate at these stores |
//! | `len_approx` / `is_empty` walks | Acquire | advisory diagnostics; only need initialised-node visibility |
//! | owner's dequeue epilogue (L103–107) | Acquire | reads the thread's own completed slot; freshness follows from the SeqCst loop exit plus coherence |
//! | stats counters | Relaxed | monotone counters, no synchronisation role |
//!
//! Each relaxation (and each forced non-relaxation) is documented at
//! its site in `queue.rs`/`desc.rs` with the counterexample that pins
//! it down.
//!
//! # Example
//!
//! ```
//! use kp_queue::{Config, WfQueue};
//! use kp_queue::{ConcurrentQueue, QueueHandle};
//!
//! let q: WfQueue<u64> = WfQueue::with_config(8, Config::opt_both());
//! std::thread::scope(|s| {
//!     for t in 0..4u64 {
//!         let q = &q;
//!         s.spawn(move || {
//!             let mut h = q.register().unwrap();
//!             for i in 0..100 {
//!                 h.enqueue(t * 1000 + i);
//!             }
//!         });
//!     }
//! });
//! let mut h = q.register().unwrap();
//! let mut n = 0;
//! while h.dequeue().is_some() {
//!     n += 1;
//! }
//! assert_eq!(n, 400);
//! ```
//!
//! [crossbeam-epoch]: https://docs.rs/crossbeam-epoch

#![warn(missing_docs)]

mod chaos_hooks;
mod config;
mod desc;
mod handle;
pub mod hp;
mod node;
mod queue;
mod reap;
mod recycle;
mod stats;

pub use config::{Config, HelpPolicy, PhasePolicy};
pub use hp::{PendingOpHp, WfHpHandle, WfQueueHp};
#[doc(hidden)]
pub use handle::PendingOp;
pub use handle::WfHandle;
pub use queue::WfQueue;
pub use stats::StatsSnapshot;

pub use queue_traits::{ConcurrentQueue, QueueHandle, RegistrationError};

#[cfg(test)]
mod tests;
