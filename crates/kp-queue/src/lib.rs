//! The Kogan–Petrank wait-free MPMC FIFO queue (PPoPP 2011) — the
//! paper's primary contribution, transcribed from the Java listings of
//! Figures 1–6 into Rust.
//!
//! # Algorithm
//!
//! The queue extends Michael & Scott's lock-free queue with a
//! priority-based *helping* scheme:
//!
//! 1. A thread starting an operation picks a **phase** number greater
//!    than (or equal to — ties are benign) every phase picked before it,
//!    Bakery-doorway style, and publishes an operation descriptor in the
//!    shared `state` array.
//! 2. It then **helps** every thread whose descriptor is pending with a
//!    phase ≤ its own (so operations older than it are finished before it
//!    returns), and finally returns once its own descriptor is no longer
//!    pending.
//! 3. Each operation is split into **three atomic steps** so that any
//!    number of helpers can share the work without applying it twice:
//!    append-node / clear-pending / swing-tail for `enqueue`, and
//!    lock-sentinel (`deqTid` CAS) / clear-pending / swing-head for
//!    `dequeue`, with an extra descriptor-points-at-sentinel stage that
//!    resolves the empty-queue race.
//!
//! Because a thread returns only after every operation with a phase not
//! exceeding its own is linearized, each call completes in a bounded
//! number of steps regardless of scheduling: **wait-freedom**.
//!
//! # Variants
//!
//! The paper evaluates the base algorithm plus two optimizations (§3.3),
//! all expressible through [`Config`]:
//!
//! | Paper label | Constructor | Meaning |
//! |---|---|---|
//! | `base WF` | [`Config::base()`] | help all peers; phase = `maxPhase()+1` scan |
//! | `opt WF (1)` | [`Config::opt1()`] | help at most one peer per operation, cyclically |
//! | `opt WF (2)` | [`Config::opt2()`] | phase from an atomic counter |
//! | `opt WF (1+2)` | [`Config::opt_both()`] | both |
//!
//! plus [`HelpPolicy::RandomChunk`] (the paper's "random chunk" remark,
//! probabilistic wait-freedom) and the `validate_before_cas` enhancement.
//!
//! # Memory management
//!
//! The paper's base algorithm leans on the Java GC; §3.4 discusses
//! non-GC runtimes. Here nodes *and* descriptors are reclaimed through
//! [crossbeam-epoch] deferred destruction, which provides the same two
//! guarantees the GC provided: no ABA (addresses are not reused while
//! any thread can still hold them) and no use-after-free. Epoch
//! reclamation is lock-free rather than wait-free; the paper's fully
//! wait-free answer (hazard pointers) is implemented in this workspace's
//! `hazard` crate and exercised by the `ms-queue` crate — see DESIGN.md
//! for the substitution rationale.
//!
//! # Thread identities
//!
//! `NUM_THRDS` in the paper becomes the `max_threads` constructor
//! argument. Threads acquire a slot by calling [`WfQueue::register`],
//! which draws a virtual ID from a wait-free long-lived-renaming pool
//! (`idpool`), the relaxation §3.3 describes; dropping the handle
//! releases the slot.
//!
//! # Memory ordering
//!
//! All shared-structure atomics use `SeqCst`, matching the semantics of
//! the Java `volatile`/`AtomicReference` fields in the paper's listings.
//! Relaxing orderings is a documented non-goal: the paper's performance
//! story concerns algorithmic helping costs, not fence elision.
//!
//! # Example
//!
//! ```
//! use kp_queue::{Config, WfQueue};
//! use kp_queue::{ConcurrentQueue, QueueHandle};
//!
//! let q: WfQueue<u64> = WfQueue::with_config(8, Config::opt_both());
//! std::thread::scope(|s| {
//!     for t in 0..4u64 {
//!         let q = &q;
//!         s.spawn(move || {
//!             let mut h = q.register().unwrap();
//!             for i in 0..100 {
//!                 h.enqueue(t * 1000 + i);
//!             }
//!         });
//!     }
//! });
//! let mut h = q.register().unwrap();
//! let mut n = 0;
//! while h.dequeue().is_some() {
//!     n += 1;
//! }
//! assert_eq!(n, 400);
//! ```
//!
//! [crossbeam-epoch]: https://docs.rs/crossbeam-epoch

#![warn(missing_docs)]

mod chaos_hooks;
mod config;
mod desc;
mod handle;
pub mod hp;
mod node;
mod queue;
mod stats;

pub use config::{Config, HelpPolicy, PhasePolicy};
pub use hp::{WfHpHandle, WfQueueHp};
#[doc(hidden)]
pub use handle::PendingOp;
pub use handle::WfHandle;
pub use queue::WfQueue;
pub use stats::StatsSnapshot;

pub use queue_traits::{ConcurrentQueue, QueueHandle, RegistrationError};

#[cfg(test)]
mod tests;
