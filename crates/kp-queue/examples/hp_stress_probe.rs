//! Diagnostic probe for the hazard-pointer queue under oversubscription:
//! runs the contention workload while a sampler prints the queue's
//! helping counters, so a stall's location can be read off which
//! counters stop moving. Exits nonzero on stall. (Kept as an example so
//! the probe ships with the crate; it doubles as a soak test.)

use kp_sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use kp_queue::{Config, ConcurrentQueue, WfQueueHp};

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let iters: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let rounds: usize = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    for round in 0..rounds {
        let q: WfQueueHp<u64> = WfQueueHp::with_config(threads, Config::base());
        let done = AtomicUsize::new(0);
        let progress: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let q = &q;
                let done = &done;
                let progress = &progress;
                s.spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..iters {
                        h.enqueue(i as u64);
                        h.dequeue();
                        progress[t].store(i, Ordering::Relaxed);
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Watchdog: declare a stall if no global progress for 5s.
            let mut last: Vec<usize> = vec![0; threads];
            let mut last_change = Instant::now();
            loop {
                std::thread::sleep(Duration::from_millis(500));
                if done.load(Ordering::Relaxed) == threads {
                    return;
                }
                let now: Vec<usize> =
                    progress.iter().map(|p| p.load(Ordering::Relaxed)).collect();
                if now != last {
                    last = now;
                    last_change = Instant::now();
                } else if last_change.elapsed() > Duration::from_secs(5) {
                    eprintln!(
                        "STALL in round {round} after {:?}: per-thread progress {last:?}, stats {:?}",
                        start.elapsed(),
                        q.stats()
                    );
                    // Exit from inside the scope: joining the stuck
                    // workers would hang the probe itself.
                    std::process::exit(1);
                }
            }
        });
        println!(
            "round {round}: ok in {:?} (helped: {} appends, {} locks)",
            start.elapsed(),
            q.stats().helped_appends,
            q.stats().helped_locks
        );
    }
    println!("no stall detected");
}
