//! Allocation regression guard: the steady-state hot path of both
//! queue variants must not touch the heap.
//!
//! The descriptor-reuse design (packed `StateSlot` words + node
//! recycling) exists to make `enqueue`/`dequeue` allocation-free after
//! warm-up. This test pins that property with a counting global
//! allocator: a regression that reintroduces an allocation per
//! operation (a boxed descriptor, an epoch-bag push, a `Vec` growth in
//! the hazard scan) fails loudly here instead of showing up as a
//! throughput mystery in the benchmarks.
//!
//! Everything runs inside ONE `#[test]` function: the allocation
//! counters are process-global, so concurrently running tests in the
//! same binary (the default harness behaviour) would make a strict
//! zero-delta assertion racy.

use kp_queue::{Config, ConcurrentQueue, WfQueue, WfQueueHp};

#[global_allocator]
static ALLOC: alloc_track::TrackingAlloc = alloc_track::TrackingAlloc;

/// Operations to run before measuring: fills the node caches, matures
/// the epoch-tagged recycle queue, and sizes every internal scratch
/// buffer (hazard scan vectors, retire lists).
const WARMUP: usize = 20_000;

/// Operations inside the measured window.
const WINDOW: usize = 20_000;

fn measure<F: FnMut()>(mut op: F) -> usize {
    let before = alloc_track::total_allocs();
    for _ in 0..WINDOW {
        op();
    }
    alloc_track::total_allocs() - before
}

#[test]
fn steady_state_is_allocation_free() {
    // --- Epoch variant, single-threaded balanced pairs -------------
    let q: WfQueue<u64> = WfQueue::with_config(2, Config::opt_both());
    let mut h = q.register().unwrap();
    for i in 0..WARMUP as u64 {
        h.enqueue(i);
        assert!(h.dequeue().is_some());
    }
    let mut i = 0u64;
    let allocs = measure(|| {
        h.enqueue(i);
        assert!(h.dequeue().is_some());
        i += 1;
    });
    assert_eq!(
        allocs, 0,
        "epoch variant: {allocs} heap allocations in {WINDOW} steady-state enqueue+dequeue pairs"
    );
    drop(h);
    drop(q);

    // --- HP variant, single-threaded balanced pairs ----------------
    let q: WfQueueHp<u64> = WfQueueHp::with_config(2, Config::opt_both());
    let mut h = q.register().unwrap();
    for i in 0..WARMUP as u64 {
        h.enqueue(i);
        assert!(h.dequeue().is_some());
    }
    let mut i = 0u64;
    let allocs = measure(|| {
        h.enqueue(i);
        assert!(h.dequeue().is_some());
        i += 1;
    });
    assert_eq!(
        allocs, 0,
        "HP variant: {allocs} heap allocations in {WINDOW} steady-state enqueue+dequeue pairs"
    );
    drop(h);
    drop(q);

    // --- Reuse OFF must still allocate (the guard guards something) -
    let q: WfQueue<u64> = WfQueue::with_config(2, Config::opt_both().with_reuse(false));
    let mut h = q.register().unwrap();
    for i in 0..WARMUP as u64 {
        h.enqueue(i);
        assert!(h.dequeue().is_some());
    }
    let mut i = 0u64;
    let allocs = measure(|| {
        h.enqueue(i);
        assert!(h.dequeue().is_some());
        i += 1;
    });
    assert!(
        allocs >= WINDOW,
        "with reuse disabled every enqueue should heap-allocate a node (saw {allocs})"
    );
    drop(h);
    drop(q);

    // --- Multi-threaded bounds --------------------------------------
    // The two variants give different guarantees under contention, and
    // the gap is the paper's §3.4 argument made empirical:
    //
    //  * HP: a preempted thread blocks reclamation of at most the ≤2
    //    nodes its hazard slots cover, so recycling keeps up and the
    //    allocation rate stays vanishingly small (<1% of ops).
    //  * Epoch: a thread descheduled while pinned stalls the global
    //    epoch for its whole timeslice; `pop_mature` then refuses to
    //    recycle and enqueues *correctly* fall back to fresh heap nodes
    //    rather than block (reclamation is lock-free, not wait-free).
    //    On an oversubscribed host the worst case is one allocation per
    //    enqueue — 0.5 allocs/op on balanced pairs, which is exactly
    //    the plateau the BENCH_PR3 contended epoch rows sit at (~0.44).
    //    The bound below is that ceiling plus 50% headroom for epoch-
    //    bag and scope bookkeeping: 0.75 allocs/op. Tightening it
    //    further would make the test hostage to scheduler luck.
    let threads = 4;
    let per = 10_000u64;

    let q: WfQueueHp<u64> = WfQueueHp::with_config(threads, Config::opt_both());
    let hp_allocs = contended_window_allocs(&q, threads, per);
    let total_ops = threads as u64 * per * 2;
    assert!(
        hp_allocs < total_ops / 100,
        "HP variant under contention: {hp_allocs} allocations across {total_ops} ops"
    );

    let q: WfQueue<u64> = WfQueue::with_config(threads, Config::opt_both());
    let epoch_allocs = contended_window_allocs(&q, threads, per);
    assert!(
        epoch_allocs < total_ops * 3 / 4,
        "epoch variant under contention exceeded the one-node-per-enqueue \
         ceiling plus headroom: {epoch_allocs} across {total_ops} ops"
    );

    // --- Post-contention recovery -----------------------------------
    // The contended fallback must be transient, not a ratchet: once the
    // preempted pins are gone, `pop_mature`'s advance nudges ripen the
    // cache again and the very same queue returns to the zero-alloc
    // steady state on a single thread.
    let mut h = q.register().unwrap();
    for i in 0..WARMUP as u64 {
        h.enqueue(i);
        assert!(h.dequeue().is_some());
    }
    let mut i = 0u64;
    let allocs = measure(|| {
        h.enqueue(i);
        assert!(h.dequeue().is_some());
        i += 1;
    });
    assert_eq!(
        allocs, 0,
        "epoch variant did not recover the allocation-free steady state \
         after contention: {allocs} allocations in {WINDOW} pairs"
    );
}

/// Warm the queue with one full round, then count process-wide heap
/// allocations across a second, identical round. Thread spawn and
/// registration allocate, so the count is an over-approximation — fine
/// for the loose contended bounds above.
fn contended_window_allocs<Q>(q: &Q, threads: usize, per: u64) -> u64
where
    Q: kp_queue::ConcurrentQueue<u64> + Sync,
{
    use kp_queue::QueueHandle;
    for round in 0..2 {
        if round == 1 {
            ALLOC_MARK.store(alloc_track::total_allocs(), kp_sync::atomic::Ordering::Relaxed);
        }
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let mut h = q.register().unwrap();
                    for i in 0..per {
                        h.enqueue(i);
                        h.dequeue();
                    }
                });
            }
        });
    }
    (alloc_track::total_allocs() - ALLOC_MARK.load(kp_sync::atomic::Ordering::Relaxed)) as u64
}

static ALLOC_MARK: kp_sync::atomic::AtomicUsize = kp_sync::atomic::AtomicUsize::new(0);
