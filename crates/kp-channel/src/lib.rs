//! A sharded, batching MPMC channel front-end over any
//! [`queue-traits`](queue_traits) engine.
//!
//! The engines in this workspace (KP and wCQ) pay a helping cost that
//! grows with the number of threads contending on *one* queue instance.
//! This crate recovers scalability the systems way: **shard** the
//! channel across N engine instances with producer-sticky routing,
//! **batch** sends and receives so a burst pays one shard acquisition,
//! and layer **blocking / async receive** on top so the whole thing
//! drops into a service. DESIGN.md §15 documents the ordering contract,
//! the batching linearizability argument, and the waker protocol; the
//! short version:
//!
//! - **Ordering.** Each [`Sender`] is pinned to one shard at creation
//!   (round-robin assignment), and each shard is itself a linearizable
//!   FIFO, so the channel preserves *FIFO per producer*: two values
//!   sent by the same sender are received in send order. No order is
//!   promised between values from different senders — that is the
//!   relaxation sharding buys its throughput with.
//! - **Wakeups.** Blocking and async receivers share one waiter
//!   registry and a Dekker-style `sleepers` gauge: a receiver registers
//!   *then* re-checks every shard before parking, a sender enqueues
//!   *then* checks the gauge. Under the total order on the SeqCst gauge
//!   operations and the engines' linearization points, one of the two
//!   re-checks always observes the other side, so no wakeup is lost.
//! - **Capacity.** Over a bounded core (wCQ) a full shard surfaces as
//!   [`TrySendError::Full`] from [`Sender::try_send`], while
//!   [`Sender::send`] treats it as backpressure and yields until a slot
//!   frees. Unbounded cores (KP) never report full. Dropping the last
//!   sender latches the channel *disconnected*: receivers drain what
//!   remains, then see [`TryRecvError::Disconnected`].
//!
//! Handles borrow the channel (`Sender<'a, ..>`), matching the
//! register-then-operate usage model of the engines. To move receivers
//! into `'static` contexts (e.g. `tokio::spawn`), give the channel a
//! `'static` home first — `Box::leak(Box::new(chan))` in
//! `examples/ingest_server.rs`.

#![warn(missing_docs)]

mod chaos_hooks;
mod errors;
mod receiver;
mod sender;
#[cfg(test)]
mod tests;

pub use errors::{
    RecvError, RecvTimeoutError, SendError, SubscribeError, TryRecvError, TrySendError,
};
pub use receiver::{Receiver, RecvFuture};
pub use sender::Sender;

use kp_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use queue_traits::ConcurrentQueue;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::{Mutex, PoisonError};
use std::task::Waker;

use chaos_hooks::inject;

/// Sizing knobs for a [`Channel`].
///
/// `max_senders`/`max_receivers` bound how many handles may be live at
/// once; they size each shard's engine thread capacity (every receiver
/// registers on every shard, senders are spread round-robin but bounded
/// pessimistically).
#[derive(Debug, Clone, Copy)]
pub struct ChannelConfig {
    /// Number of engine instances values are sharded over.
    pub shards: usize,
    /// Upper bound on simultaneously live [`Sender`]s.
    pub max_senders: usize,
    /// Upper bound on simultaneously live [`Receiver`]s.
    pub max_receivers: usize,
}

impl ChannelConfig {
    /// One shard, 16 senders, 16 receivers.
    pub fn new() -> ChannelConfig {
        ChannelConfig { shards: 1, max_senders: 16, max_receivers: 16 }
    }

    /// Sets the shard count (≥ 1).
    pub fn with_shards(mut self, shards: usize) -> ChannelConfig {
        assert!(shards >= 1, "a channel needs at least one shard");
        self.shards = shards;
        self
    }

    /// Sets the live-sender bound (≥ 1).
    pub fn with_max_senders(mut self, n: usize) -> ChannelConfig {
        assert!(n >= 1);
        self.max_senders = n;
        self
    }

    /// Sets the live-receiver bound (≥ 1).
    pub fn with_max_receivers(mut self, n: usize) -> ChannelConfig {
        assert!(n >= 1);
        self.max_receivers = n;
        self
    }

    /// Engine thread capacity each shard must provide: every receiver
    /// registers on every shard, and in the worst case every sender
    /// lands on one shard (handles outlive rebalancing).
    pub fn threads_per_shard(&self) -> usize {
        self.max_senders + self.max_receivers
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig::new()
    }
}

/// Everything a shard factory needs to build one engine instance.
#[derive(Debug, Clone, Copy)]
pub struct ShardSpec {
    /// This shard's index, `0..shards`.
    pub index: usize,
    /// Total shard count.
    pub shards: usize,
    /// Minimum thread capacity the engine must register.
    pub threads: usize,
}

/// A waiter parked in [`Channel::recv`](Receiver::recv) (an OS thread)
/// or pending in [`Receiver::poll_recv`] (a task waker).
pub(crate) enum WaiterKind {
    Thread(std::thread::Thread),
    Task(Waker),
}

impl WaiterKind {
    fn wake(self) {
        match self {
            WaiterKind::Thread(t) => t.unpark(),
            WaiterKind::Task(w) => w.wake(),
        }
    }
}

/// FIFO registry of parked/pending receivers. Guarded by
/// [`Channel::waiters`]; the `sleepers` gauge mirrors its length.
pub(crate) struct WaiterList {
    slots: VecDeque<(u64, WaiterKind)>,
    next_id: u64,
}

/// The sharded channel. Mint handles with [`sender`](Channel::sender) /
/// [`receiver`](Channel::receiver); the channel itself is the shared
/// home the handles borrow.
pub struct Channel<T: Send, Q: ConcurrentQueue<T>> {
    shards: Box<[Q]>,
    /// Round-robin cursor for sticky sender→shard assignment.
    next_shard: AtomicUsize,
    /// Live handle counts; reaching zero latches the matching `closed`.
    tx_live: AtomicUsize,
    rx_live: AtomicUsize,
    /// Latched by the last sender/receiver drop. Once set, that side
    /// never reopens: `try_sender`/`try_receiver` refuse.
    tx_closed: AtomicBool,
    rx_closed: AtomicBool,
    /// Dekker gauge: number of entries in `waiters`. Senders read it
    /// after enqueuing to decide whether a wake is needed without
    /// taking the lock on the common path.
    sleepers: AtomicUsize,
    waiters: Mutex<WaiterList>,
    _values: PhantomData<fn(T) -> T>,
}

impl<T: Send, Q: ConcurrentQueue<T>> Channel<T, Q> {
    /// Builds a channel whose shards come from `factory` (called once
    /// per shard, in index order).
    pub fn with_factory(cfg: ChannelConfig, mut factory: impl FnMut(ShardSpec) -> Q) -> Self {
        let threads = cfg.threads_per_shard();
        let shards: Vec<Q> = (0..cfg.shards)
            .map(|index| factory(ShardSpec { index, shards: cfg.shards, threads }))
            .collect();
        for (i, q) in shards.iter().enumerate() {
            assert!(
                q.thread_capacity() >= threads,
                "shard {i} registers only {} handles, config needs {threads}",
                q.thread_capacity()
            );
        }
        Channel {
            shards: shards.into_boxed_slice(),
            next_shard: AtomicUsize::new(0),
            tx_live: AtomicUsize::new(0),
            rx_live: AtomicUsize::new(0),
            tx_closed: AtomicBool::new(false),
            rx_closed: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            waiters: Mutex::new(WaiterList { slots: VecDeque::new(), next_id: 0 }),
            _values: PhantomData,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether the send side has closed (last sender dropped).
    pub fn is_disconnected(&self) -> bool {
        self.tx_closed.load(Ordering::Acquire)
    }

    /// Mints a sender pinned to the next shard round-robin.
    ///
    /// Minting concurrently with the drop of the last live sender is a
    /// logical race: create the handles you need before the last one
    /// can go away.
    pub fn try_sender(&self) -> Result<Sender<'_, T, Q>, SubscribeError> {
        if self.tx_closed.load(Ordering::Acquire) {
            return Err(SubscribeError::Closed);
        }
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let handle = self.shards[shard].register().map_err(SubscribeError::Capacity)?;
        self.tx_live.fetch_add(1, Ordering::Relaxed);
        Ok(Sender::new(self, handle, shard))
    }

    /// [`try_sender`](Channel::try_sender), panicking on failure.
    pub fn sender(&self) -> Sender<'_, T, Q> {
        self.try_sender().expect("cannot mint channel sender")
    }

    /// Mints a receiver holding one engine handle per shard.
    pub fn try_receiver(&self) -> Result<Receiver<'_, T, Q>, SubscribeError> {
        if self.rx_closed.load(Ordering::Acquire) {
            return Err(SubscribeError::Closed);
        }
        let mut handles = Vec::with_capacity(self.shards.len());
        for q in self.shards.iter() {
            handles.push(q.register().map_err(SubscribeError::Capacity)?);
        }
        // Stagger each receiver's initial sweep cursor so concurrent
        // receivers start draining *different* shards instead of all
        // contending on shard 0's head.
        let start = self.rx_live.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        Ok(Receiver::new(self, handles, start))
    }

    /// [`try_receiver`](Channel::try_receiver), panicking on failure.
    pub fn receiver(&self) -> Receiver<'_, T, Q> {
        self.try_receiver().expect("cannot mint channel receiver")
    }

    // ---- waiter registry (the waker protocol of DESIGN.md §15) ----

    fn lock_waiters(&self) -> std::sync::MutexGuard<'_, WaiterList> {
        // The registry stays consistent through a panicking waiter (all
        // mutation is push/remove of plain entries), so poison is not
        // load-bearing here.
        self.waiters.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Publishes a waiter. The gauge increment is the Dekker store: it
    /// is SeqCst so it is globally ordered before the caller's
    /// subsequent shard re-check.
    pub(crate) fn register_waiter(&self, kind: WaiterKind) -> u64 {
        let mut w = self.lock_waiters();
        let id = w.next_id;
        w.next_id += 1;
        w.slots.push_back((id, kind));
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        id
    }

    /// Withdraws a registration. Returns `false` if a notifier already
    /// popped it — a wake token was spent on the caller, who must
    /// either consume it (by re-checking the shards) or pass it on via
    /// [`wake_one`](Channel::wake_one).
    pub(crate) fn cancel_waiter(&self, id: u64) -> bool {
        let mut w = self.lock_waiters();
        if let Some(pos) = w.slots.iter().position(|(i, _)| *i == id) {
            w.slots.remove(pos);
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Re-arms an existing async registration with a fresh waker,
    /// so a task re-polled with a new context keeps exactly one slot.
    /// Returns `false` if the registration was already popped.
    pub(crate) fn rearm_waiter(&self, id: u64, waker: &Waker) -> bool {
        let mut w = self.lock_waiters();
        if let Some((_, kind)) = w.slots.iter_mut().find(|(i, _)| *i == id) {
            *kind = WaiterKind::Task(waker.clone());
            true
        } else {
            false
        }
    }

    /// Pops and wakes the oldest waiter, if any.
    pub(crate) fn wake_one(&self) -> bool {
        inject!("chan.wake");
        let popped = {
            let mut w = self.lock_waiters();
            let popped = w.slots.pop_front();
            if popped.is_some() {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
            }
            popped
        };
        match popped {
            // Wake outside the lock: a waker may run scheduler code.
            Some((_, kind)) => {
                kind.wake();
                true
            }
            None => false,
        }
    }

    /// Sender-side notification after one enqueue. The gauge load is
    /// the Dekker check: SeqCst, globally ordered after the enqueue.
    pub(crate) fn notify_one(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            self.wake_one();
        }
    }

    /// Sender-side notification after a batch of `n` enqueues: wakes up
    /// to `n` waiters (one re-check each suffices to drain the batch or
    /// prove it was drained by others).
    pub(crate) fn notify_many(&self, n: usize) {
        if n == 0 {
            return;
        }
        let sleeping = self.sleepers.load(Ordering::SeqCst);
        for _ in 0..n.min(sleeping) {
            if !self.wake_one() {
                break;
            }
        }
    }

    /// Wakes every waiter (disconnect broadcast).
    pub(crate) fn wake_all(&self) {
        while self.wake_one() {}
    }

    // ---- handle drop accounting ----

    pub(crate) fn sender_dropped(&self) {
        if self.tx_live.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: latch the disconnect, then broadcast so
            // parked receivers re-check and observe it. The store is
            // ordered before the registry critical section every woken
            // receiver passes through in `cancel_waiter`.
            self.tx_closed.store(true, Ordering::Release);
            self.wake_all();
        }
    }

    pub(crate) fn receiver_dropped(&self) {
        if self.rx_live.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Senders never park, so a latch is all that is needed:
            // their send loops poll it.
            self.rx_closed.store(true, Ordering::Release);
        }
    }

    pub(crate) fn rx_closed(&self) -> bool {
        self.rx_closed.load(Ordering::Acquire)
    }

    pub(crate) fn tx_closed(&self) -> bool {
        self.tx_closed.load(Ordering::Acquire)
    }
}

impl<T: Send, Q: ConcurrentQueue<T>> std::fmt::Debug for Channel<T, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel")
            .field("shards", &self.shards.len())
            .field("tx_live", &self.tx_live.load(Ordering::Relaxed))
            .field("rx_live", &self.rx_live.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Channel<T, wcq::WcQueue<T>> {
    /// A channel over bounded wCQ ring shards, each holding at most
    /// `shard_capacity` values (rounded up to a power of two by the
    /// engine). Full shards surface as [`TrySendError::Full`].
    pub fn wcq(cfg: ChannelConfig, shard_capacity: usize) -> Self {
        Channel::with_factory(cfg, |s| {
            wcq::WcQueue::with_config(s.threads, wcq::Config::new().with_capacity(shard_capacity))
        })
    }
}

impl<T: Send + 'static> Channel<T, kp_queue::WfQueue<T>> {
    /// A channel over unbounded Kogan–Petrank shards; sends never
    /// report full.
    ///
    /// Shards run the production fast-path/slow-path configuration
    /// (DESIGN.md §12): the bounded Michael–Scott CAS loop first, the
    /// paper's descriptor-and-helping machinery as the wait-free
    /// fallback. The channel is a front-end, not a measurement rig —
    /// the paper-series slow-only configurations stay available through
    /// [`Channel::with_factory`] for ablation runs.
    pub fn kp(cfg: ChannelConfig) -> Self {
        Channel::with_factory(cfg, |s| {
            kp_queue::WfQueue::with_config(s.threads, kp_queue::Config::fast())
        })
    }
}
