//! A sharded, batching MPMC channel front-end over any
//! [`queue-traits`](queue_traits) engine.
//!
//! The engines in this workspace (KP and wCQ) pay a helping cost that
//! grows with the number of threads contending on *one* queue instance.
//! This crate recovers scalability the systems way: **shard** the
//! channel across N engine instances with producer-sticky routing,
//! **batch** sends and receives so a burst pays one shard acquisition,
//! and layer **blocking / async receive** on top so the whole thing
//! drops into a service. DESIGN.md §15 documents the ordering contract,
//! the batching linearizability argument, and the waker protocol; §16
//! the overload model; the short version:
//!
//! - **Ordering.** Each [`Sender`] is pinned to one shard at creation
//!   (round-robin assignment), and each shard is itself a linearizable
//!   FIFO, so the channel preserves *FIFO per producer*: two values
//!   sent by the same sender are received in send order. No order is
//!   promised between values from different senders — that is the
//!   relaxation sharding buys its throughput with. (The opt-in
//!   [`QuarantinePolicy::Reroute`] trades this guarantee away; see
//!   its docs.)
//! - **Wakeups.** Blocking and async receivers share one waiter
//!   registry and a Dekker-style `sleepers` gauge: a receiver registers
//!   *then* re-checks every shard before parking, a sender enqueues
//!   *then* checks the gauge. Capacity-blocked senders park on a
//!   symmetric per-shard registry that receivers notify after each
//!   dequeue. Under the total order on the SeqCst gauge operations
//!   and the engines' linearization points, one of the two re-checks
//!   always observes the other side, so no wakeup is lost.
//! - **Capacity and overload.** Over a bounded core (wCQ) a full shard
//!   surfaces as [`TrySendError::Full`] from [`Sender::try_send`],
//!   while [`Sender::send`] treats it as backpressure and *parks*
//!   until a receiver frees a slot; [`Sender::send_timeout`] bounds
//!   the wait. Unbounded cores (KP) never report full from the engine,
//!   but an [`OverloadConfig`] can impose a soft depth/pressure quota
//!   (admission control) and a shard-health watchdog that quarantines
//!   shards whose consumers have stalled — see
//!   [`Channel::health_snapshot`]. Dropping the last sender latches
//!   the channel *disconnected*: receivers drain what remains, then
//!   see [`TryRecvError::Disconnected`].
//!
//! Handles borrow the channel (`Sender<'a, ..>`), matching the
//! register-then-operate usage model of the engines. To move receivers
//! into `'static` contexts (e.g. `tokio::spawn`), give the channel a
//! `'static` home first — `Box::leak(Box::new(chan))` in
//! `examples/ingest_server.rs`.

#![warn(missing_docs)]

mod chaos_hooks;
mod errors;
mod overload;
mod park;
mod receiver;
mod sender;
#[cfg(test)]
mod tests;

pub use errors::{
    RecvError, RecvTimeoutError, SendError, SendTimeoutError, SubscribeError, TryRecvError,
    TrySendError,
};
pub use overload::{HealthSnapshot, HealthState, OverloadConfig, QuarantinePolicy, ShardSnapshot};
pub use receiver::{Receiver, RecvFuture};
pub use sender::Sender;

use kp_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use overload::{Gauges, HealthEvent, ShardHealth};
use park::ParkRegistry;
pub(crate) use park::{WaitGuard, WaiterKind};
use queue_traits::ConcurrentQueue;
use std::marker::PhantomData;
use std::task::Waker;
use std::time::Instant;

use chaos_hooks::inject;

/// Ops between a handle's opportunistic watchdog-tick attempts; the
/// reaper's TICK_STRIDE idea at channel granularity, so hot paths pay
/// one `Instant::now` per stride, not per op.
pub(crate) const TICK_STRIDE: u32 = 16;

/// Sizing knobs for a [`Channel`].
///
/// `max_senders`/`max_receivers` bound how many handles may be live at
/// once; they size each shard's engine thread capacity (every receiver
/// registers on every shard, senders are spread round-robin but bounded
/// pessimistically — which is also what lets `Reroute` senders register
/// lazily on foreign shards).
#[derive(Debug, Clone, Copy)]
pub struct ChannelConfig {
    /// Number of engine instances values are sharded over.
    pub shards: usize,
    /// Upper bound on simultaneously live [`Sender`]s.
    pub max_senders: usize,
    /// Upper bound on simultaneously live [`Receiver`]s.
    pub max_receivers: usize,
    /// Overload-control knobs; [`OverloadConfig::disabled`] by default.
    pub overload: OverloadConfig,
}

impl ChannelConfig {
    /// One shard, 16 senders, 16 receivers, overload control off.
    pub fn new() -> ChannelConfig {
        ChannelConfig {
            shards: 1,
            max_senders: 16,
            max_receivers: 16,
            overload: OverloadConfig::disabled(),
        }
    }

    /// Sets the shard count (≥ 1).
    pub fn with_shards(mut self, shards: usize) -> ChannelConfig {
        assert!(shards >= 1, "a channel needs at least one shard");
        self.shards = shards;
        self
    }

    /// Sets the live-sender bound (≥ 1).
    pub fn with_max_senders(mut self, n: usize) -> ChannelConfig {
        assert!(n >= 1);
        self.max_senders = n;
        self
    }

    /// Sets the live-receiver bound (≥ 1).
    pub fn with_max_receivers(mut self, n: usize) -> ChannelConfig {
        assert!(n >= 1);
        self.max_receivers = n;
        self
    }

    /// Sets the overload-control configuration (DESIGN.md §16).
    pub fn with_overload(mut self, overload: OverloadConfig) -> ChannelConfig {
        self.overload = overload;
        self
    }

    /// Engine thread capacity each shard must provide: every receiver
    /// registers on every shard, and in the worst case every sender
    /// lands on one shard (handles outlive rebalancing; `Reroute`
    /// senders mint lazy foreign-shard handles out of the same
    /// budget).
    pub fn threads_per_shard(&self) -> usize {
        self.max_senders + self.max_receivers
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig::new()
    }
}

/// Everything a shard factory needs to build one engine instance.
#[derive(Debug, Clone, Copy)]
pub struct ShardSpec {
    /// This shard's index, `0..shards`.
    pub index: usize,
    /// Total shard count.
    pub shards: usize,
    /// Minimum thread capacity the engine must register.
    pub threads: usize,
}

/// Admission decision for one send (see [`Channel::admit`]).
pub(crate) enum Gate {
    /// Proceed to the engine.
    Admit,
    /// Refused by quota or quarantine. `reroute` is set when the
    /// refusal came from a quarantined shard under
    /// [`QuarantinePolicy::Reroute`] — the caller should try
    /// [`Channel::reroute_target`] before treating it as `Full`.
    Refuse {
        /// Try another shard instead of backpressuring.
        reroute: bool,
    },
}

/// The sharded channel. Mint handles with [`sender`](Channel::sender) /
/// [`receiver`](Channel::receiver); the channel itself is the shared
/// home the handles borrow.
pub struct Channel<T: Send, Q: ConcurrentQueue<T>> {
    shards: Box<[Q]>,
    /// Round-robin cursor for sticky sender→shard assignment.
    next_shard: AtomicUsize,
    /// Live handle counts; reaching zero latches the matching `closed`.
    tx_live: AtomicUsize,
    rx_live: AtomicUsize,
    /// Latched by the last sender/receiver drop. Once set, that side
    /// never reopens: `try_sender`/`try_receiver` refuse.
    tx_closed: AtomicBool,
    rx_closed: AtomicBool,
    /// Receivers waiting for values.
    rx_parks: ParkRegistry,
    /// Capacity-blocked senders waiting for slots, one registry per
    /// shard: a slot freed on shard `s` can only unblock a sender of
    /// shard `s`, so a global registry would let wake tokens die on
    /// senders of the wrong shard.
    tx_parks: Box<[ParkRegistry]>,
    /// Watchdog state, one per shard.
    health: Box<[ShardHealth]>,
    overload: OverloadConfig,
    /// `overload.enabled()`, cached: the one branch disabled channels
    /// pay per send.
    overload_on: bool,
    /// Wall-clock epoch for the watchdog's millisecond timestamps.
    epoch: Instant,
    /// Channel-epoch ms of the last claimed watchdog tick; claiming is
    /// a CAS so exactly one thread runs each tick's state machine.
    tick_claim: AtomicU64,
    _values: PhantomData<fn(T) -> T>,
}

impl<T: Send, Q: ConcurrentQueue<T>> Channel<T, Q> {
    /// Builds a channel whose shards come from `factory` (called once
    /// per shard, in index order).
    pub fn with_factory(cfg: ChannelConfig, mut factory: impl FnMut(ShardSpec) -> Q) -> Self {
        let threads = cfg.threads_per_shard();
        let shards: Vec<Q> = (0..cfg.shards)
            .map(|index| factory(ShardSpec { index, shards: cfg.shards, threads }))
            .collect();
        for (i, q) in shards.iter().enumerate() {
            assert!(
                q.thread_capacity() >= threads,
                "shard {i} registers only {} handles, config needs {threads}",
                q.thread_capacity()
            );
        }
        Channel {
            tx_parks: shards.iter().map(|_| ParkRegistry::new()).collect(),
            health: shards.iter().map(|_| ShardHealth::new()).collect(),
            shards: shards.into_boxed_slice(),
            next_shard: AtomicUsize::new(0),
            tx_live: AtomicUsize::new(0),
            rx_live: AtomicUsize::new(0),
            tx_closed: AtomicBool::new(false),
            rx_closed: AtomicBool::new(false),
            rx_parks: ParkRegistry::new(),
            overload_on: cfg.overload.enabled(),
            overload: cfg.overload,
            epoch: Instant::now(),
            tick_claim: AtomicU64::new(0),
            _values: PhantomData,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether the send side has closed (last sender dropped).
    pub fn is_disconnected(&self) -> bool {
        self.tx_closed.load(Ordering::Acquire)
    }

    /// The overload configuration this channel runs with.
    pub fn overload_config(&self) -> &OverloadConfig {
        &self.overload
    }

    /// Mints a sender pinned to the next shard round-robin.
    ///
    /// Minting concurrently with the drop of the last live sender is a
    /// logical race: create the handles you need before the last one
    /// can go away.
    pub fn try_sender(&self) -> Result<Sender<'_, T, Q>, SubscribeError> {
        if self.tx_closed.load(Ordering::Acquire) {
            return Err(SubscribeError::Closed);
        }
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let handle = self.shards[shard].register().map_err(SubscribeError::Capacity)?;
        self.tx_live.fetch_add(1, Ordering::Relaxed);
        Ok(Sender::new(self, handle, shard))
    }

    /// [`try_sender`](Channel::try_sender), panicking on failure.
    pub fn sender(&self) -> Sender<'_, T, Q> {
        self.try_sender().expect("cannot mint channel sender")
    }

    /// Mints a receiver holding one engine handle per shard.
    pub fn try_receiver(&self) -> Result<Receiver<'_, T, Q>, SubscribeError> {
        if self.rx_closed.load(Ordering::Acquire) {
            return Err(SubscribeError::Closed);
        }
        let mut handles = Vec::with_capacity(self.shards.len());
        for q in self.shards.iter() {
            handles.push(q.register().map_err(SubscribeError::Capacity)?);
        }
        // Stagger each receiver's initial sweep cursor so concurrent
        // receivers start draining *different* shards instead of all
        // contending on shard 0's head.
        let start = self.rx_live.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        Ok(Receiver::new(self, handles, start))
    }

    /// [`try_receiver`](Channel::try_receiver), panicking on failure.
    pub fn receiver(&self) -> Receiver<'_, T, Q> {
        self.try_receiver().expect("cannot mint channel receiver")
    }

    // ---- receiver-side waiter registry (DESIGN.md §15) ----

    /// Publishes a receiver waiter (Dekker store; see `park.rs`).
    pub(crate) fn register_waiter(&self, kind: WaiterKind) -> u64 {
        self.rx_parks.register(kind)
    }

    /// Withdraws a registration; `false` means a token was spent on
    /// the caller (consume it or pass it on).
    pub(crate) fn cancel_waiter(&self, id: u64) -> bool {
        self.rx_parks.cancel(id)
    }

    /// Re-arms an async registration with a fresh waker.
    pub(crate) fn rearm_waiter(&self, id: u64, waker: &Waker) -> bool {
        self.rx_parks.rearm(id, waker)
    }

    /// Pops and wakes the oldest receiver waiter, if any.
    pub(crate) fn wake_one(&self) -> bool {
        inject!("chan.wake");
        self.rx_parks.wake_one()
    }

    /// Sender-side notification after one enqueue. The gauge load is
    /// the Dekker check: SeqCst, globally ordered after the enqueue.
    pub(crate) fn notify_one(&self) {
        if self.rx_parks.sleepers() > 0 {
            self.wake_one();
        }
    }

    /// Sender-side notification after a batch of `n` enqueues: wakes up
    /// to `n` waiters (one re-check each suffices to drain the batch or
    /// prove it was drained by others).
    pub(crate) fn notify_many(&self, n: usize) {
        if n == 0 {
            return;
        }
        let sleeping = self.rx_parks.sleepers();
        for _ in 0..n.min(sleeping) {
            if !self.wake_one() {
                break;
            }
        }
    }

    /// Wakes every receiver waiter (disconnect broadcast).
    pub(crate) fn wake_all(&self) {
        while self.wake_one() {}
    }

    // ---- sender-side (capacity) waiter registry (DESIGN.md §16) ----

    /// Shard `shard`'s capacity-waiter registry, for senders to park
    /// on.
    pub(crate) fn tx_registry(&self, shard: usize) -> &ParkRegistry {
        &self.tx_parks[shard]
    }

    /// Receiver-side notification after draining `n` values from
    /// `shard`: each freed slot can admit one parked sender. The gauge
    /// load is the symmetric Dekker check, SeqCst-ordered after the
    /// engine dequeue.
    pub(crate) fn notify_tx(&self, shard: usize, n: usize) {
        if n != 0 && self.tx_parks[shard].sleepers() > 0 {
            inject!("chan.wake");
            self.tx_parks[shard].notify_many(n);
        }
    }

    // ---- overload control (DESIGN.md §16) ----

    /// Milliseconds since channel creation (the watchdog clock).
    pub(crate) fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn gauges(&self, shard: usize) -> Gauges {
        let q = &self.shards[shard];
        Gauges {
            depth: q.depth_hint(),
            capacity: q.capacity_hint(),
            drained: q.drained_hint(),
            pressure: q.pressure_hint(),
        }
    }

    /// Opportunistic watchdog tick: claims the next tick slot by CAS
    /// if `tick_interval` has passed, and runs the per-shard state
    /// machine. Called from send/receive paths on a stride, and from
    /// sender park loops directly (a stalled consumer means nobody
    /// else is ticking).
    pub(crate) fn maybe_tick(&self) {
        if !self.overload_on {
            return;
        }
        let now = self.now_ms();
        let last = self.tick_claim.load(Ordering::Relaxed);
        if now.saturating_sub(last) < self.overload.tick_interval.as_millis() as u64 {
            return;
        }
        if self
            .tick_claim
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        for shard in 0..self.shards.len() {
            let g = self.gauges(shard);
            match self.health[shard].observe(now, &g, &self.overload) {
                Some(HealthEvent::Quarantined) => {
                    inject!("chan.quarantine");
                    // Senders parked on the shard must re-evaluate:
                    // under Reroute they can leave, under Backpressure
                    // they re-park with the bounded-poll floor.
                    self.tx_parks[shard].wake_all();
                }
                Some(HealthEvent::Readmitted) => {
                    self.tx_parks[shard].wake_all();
                }
                None => {}
            }
        }
    }

    /// Admission decision for one send to `shard`. With overload
    /// control disabled this is a single branch.
    pub(crate) fn admit(&self, shard: usize) -> Gate {
        if !self.overload_on {
            return Gate::Admit;
        }
        inject!("chan.admit");
        let h = &self.health[shard];
        if h.state() == HealthState::Quarantined {
            // Inline re-admission: a recovered consumer shows up at
            // the next send, not the next tick.
            let g = self.gauges(shard);
            if h.try_readmit(&g, &self.overload).is_some() {
                self.tx_parks[shard].wake_all();
                return Gate::Admit;
            }
            if h.claim_probe(self.now_ms(), &self.overload) {
                inject!("chan.probe");
                return Gate::Admit;
            }
            return Gate::Refuse {
                reroute: self.overload.policy == QuarantinePolicy::Reroute,
            };
        }
        if h.pressure_hot() {
            return Gate::Refuse { reroute: false };
        }
        if let Some(quota) = self.overload.depth_quota {
            if self.shards[shard].depth_hint().is_some_and(|d| d > quota) {
                return Gate::Refuse { reroute: false };
            }
        }
        Gate::Admit
    }

    /// The next non-quarantined shard after `home`, for
    /// [`QuarantinePolicy::Reroute`]; `None` when every other shard is
    /// also quarantined.
    pub(crate) fn reroute_target(&self, home: usize) -> Option<usize> {
        let n = self.shards.len();
        (1..n)
            .map(|i| (home + i) % n)
            .find(|&s| self.health[s].state() != HealthState::Quarantined)
    }

    /// Shard `i`'s engine, for lazy foreign-shard handle registration.
    pub(crate) fn shard_queue(&self, i: usize) -> &Q {
        &self.shards[i]
    }

    /// Bounded-poll floor for senders parked on an *advisory-gauge*
    /// refusal (quota or quarantine): such parks re-poll at the probe
    /// interval instead of relying on a wakeup, because the gauges
    /// carry no Dekker liveness guarantee. Engine-`Full` parks have
    /// one (receiver dequeues notify the registry) and wait
    /// indefinitely.
    pub(crate) fn gate_poll_interval(&self) -> std::time::Duration {
        self.overload.probe_interval
    }

    /// Operator view: per-shard gauges, quarantine state, and parking
    /// counters. All advisory (relaxed reads of live counters).
    pub fn health_snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            shards: (0..self.shards.len())
                .map(|i| {
                    let g = self.gauges(i);
                    let h = &self.health[i];
                    let p = &self.tx_parks[i];
                    ShardSnapshot {
                        state: h.state(),
                        depth: g.depth,
                        capacity: g.capacity,
                        drained: g.drained,
                        pressure: g.pressure,
                        quarantines: h.quarantine_count(),
                        probes: h.probe_count(),
                        tx_sleepers: p.sleepers(),
                        tx_parks: p.park_count(),
                        tx_wakes: p.wake_count(),
                    }
                })
                .collect(),
            rx_sleepers: self.rx_parks.sleepers(),
            rx_parks: self.rx_parks.park_count(),
            rx_wakes: self.rx_parks.wake_count(),
        }
    }

    // ---- handle drop accounting ----

    pub(crate) fn sender_dropped(&self) {
        if self.tx_live.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: latch the disconnect, then broadcast so
            // parked receivers re-check and observe it. The store is
            // ordered before the registry critical section every woken
            // receiver passes through in `cancel_waiter`.
            self.tx_closed.store(true, Ordering::Release);
            self.wake_all();
        }
    }

    pub(crate) fn receiver_dropped(&self) {
        if self.rx_live.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Latch first, then broadcast to capacity-parked senders:
            // with no receivers left nobody will ever free a slot, so
            // every parked sender must wake and observe Disconnected.
            self.rx_closed.store(true, Ordering::Release);
            for reg in self.tx_parks.iter() {
                reg.wake_all();
            }
        }
    }

    pub(crate) fn rx_closed(&self) -> bool {
        self.rx_closed.load(Ordering::Acquire)
    }

    pub(crate) fn tx_closed(&self) -> bool {
        self.tx_closed.load(Ordering::Acquire)
    }
}

impl<T: Send, Q: ConcurrentQueue<T>> std::fmt::Debug for Channel<T, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel")
            .field("shards", &self.shards.len())
            .field("tx_live", &self.tx_live.load(Ordering::Relaxed))
            .field("rx_live", &self.rx_live.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Channel<T, wcq::WcQueue<T>> {
    /// A channel over bounded wCQ ring shards, each holding at most
    /// `shard_capacity` values (rounded up to a power of two by the
    /// engine). Full shards surface as [`TrySendError::Full`].
    pub fn wcq(cfg: ChannelConfig, shard_capacity: usize) -> Self {
        Channel::with_factory(cfg, |s| {
            wcq::WcQueue::with_config(s.threads, wcq::Config::new().with_capacity(shard_capacity))
        })
    }
}

impl<T: Send + 'static> Channel<T, kp_queue::WfQueue<T>> {
    /// A channel over unbounded Kogan–Petrank shards; the engine never
    /// reports full, though an [`OverloadConfig`] admission quota can
    /// (DESIGN.md §16).
    ///
    /// Shards run the production fast-path/slow-path configuration
    /// (DESIGN.md §12): the bounded Michael–Scott CAS loop first, the
    /// paper's descriptor-and-helping machinery as the wait-free
    /// fallback. The channel is a front-end, not a measurement rig —
    /// the paper-series slow-only configurations stay available through
    /// [`Channel::with_factory`] for ablation runs.
    pub fn kp(cfg: ChannelConfig) -> Self {
        Channel::with_factory(cfg, |s| {
            kp_queue::WfQueue::with_config(s.threads, kp_queue::Config::fast())
        })
    }
}
