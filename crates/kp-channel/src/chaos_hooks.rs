//! Fault-injection hooks for the channel layer, compiled away unless
//! the `chaos` cargo feature is enabled.
//!
//! Same contract as `wcq/src/chaos_hooks.rs`: every labeled
//! `inject!("site")` sits immediately *before* the protocol step it
//! names, so a fault plan can stall or yield-storm a thread in the
//! window the wakeup protocol exists to survive. With the feature off
//! the macro expands to nothing.
//!
//! The channel sites are **stall/storm sites only**: unlike the engine
//! sites (`wcq.*`, `kp.*`), the channel's waiter registry is a lock, so
//! kill plans must keep targeting engine sites. All sites sit outside
//! lock-held regions.
//!
//! Site names (`chan.*`):
//!
//! | site | window it opens |
//! |---|---|
//! | `chan.route` | top of each single send, before the sticky-shard engine enqueue |
//! | `chan.batch` | top of each `send_batch`/`recv_batch`, before the batch touches its shard |
//! | `chan.park` | before a receiver publishes itself to the waiter registry (the Dekker store) |
//! | `chan.wake` | before a notifier pops and wakes the next registered waiter (rx and tx registries) |
//! | `chan.send_park` | before a refused sender publishes itself to its shard's capacity registry |
//! | `chan.admit` | top of the admission gate, before the quota/quarantine decision |
//! | `chan.quarantine` | after the watchdog confirms a quarantine, before parked senders are rewoken |
//! | `chan.probe` | after a probe slot is claimed, before the probe value reaches the engine |

#[cfg(feature = "chaos")]
macro_rules! inject {
    ($site:expr) => {
        ::chaos::hit($site)
    };
}

#[cfg(not(feature = "chaos"))]
macro_rules! inject {
    ($site:expr) => {};
}

pub(crate) use inject;
