//! The producing half: sticky-shard routing, blocking/non-blocking
//! sends, and batched sends.

use crate::chaos_hooks::inject;
use crate::{Channel, SendError, TrySendError};
use queue_traits::{ConcurrentQueue, QueueHandle};

/// A producer handle. Pinned to one shard for its whole lifetime, which
/// is what makes the channel FIFO-per-producer (DESIGN.md §15): every
/// value a sender emits goes through the same linearizable FIFO.
///
/// Not `Clone` — mint more senders from the [`Channel`].
pub struct Sender<'a, T: Send, Q: ConcurrentQueue<T>> {
    chan: &'a Channel<T, Q>,
    handle: Q::Handle<'a>,
    shard: usize,
    /// Reusable staging buffer for `send_batch` — the batch is buffered
    /// here once, then handed to the engine's `try_enqueue_batch`, so
    /// the steady state allocates nothing per batch.
    scratch: Vec<T>,
}

impl<'a, T: Send, Q: ConcurrentQueue<T>> Sender<'a, T, Q> {
    pub(crate) fn new(chan: &'a Channel<T, Q>, handle: Q::Handle<'a>, shard: usize) -> Self {
        Sender { chan, handle, shard, scratch: Vec::new() }
    }

    /// The shard this sender is pinned to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Attempts to send without blocking. Fails with
    /// [`TrySendError::Full`] if this sender's shard is at capacity
    /// (bounded cores only) and [`TrySendError::Disconnected`] once
    /// every receiver has dropped.
    pub fn try_send(&mut self, value: T) -> Result<(), TrySendError<T>> {
        inject!("chan.route");
        if self.chan.rx_closed() {
            return Err(TrySendError::Disconnected(value));
        }
        match self.handle.try_enqueue(value) {
            Ok(()) => {
                self.chan.notify_one();
                Ok(())
            }
            Err(v) => Err(TrySendError::Full(v)),
        }
    }

    /// Sends, treating a full shard as backpressure: yields and retries
    /// until a slot frees up or the channel disconnects.
    pub fn send(&mut self, value: T) -> Result<(), SendError<T>> {
        let mut v = value;
        loop {
            match self.try_send(v) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(back)) => {
                    // The shard holds values; make sure someone is
                    // draining before we spin on it.
                    self.chan.notify_one();
                    v = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Sends every value of a batch through the sticky shard, then
    /// notifies sleepers once — one gauge check and at most
    /// `batch`-many wakes for the whole burst, instead of one per
    /// value. Full shards are treated as backpressure, like
    /// [`send`](Sender::send).
    ///
    /// Returns how many values were sent. If the channel disconnects
    /// mid-batch, the unsent remainder (the failing value included)
    /// comes back in the error.
    pub fn send_batch(
        &mut self,
        batch: impl IntoIterator<Item = T>,
    ) -> Result<usize, SendError<Vec<T>>> {
        inject!("chan.batch");
        debug_assert!(self.scratch.is_empty());
        self.scratch.extend(batch);
        let mut sent = 0;
        while !self.scratch.is_empty() {
            if self.chan.rx_closed() {
                // Receivers are gone; earlier values of the batch are
                // unrecoverable anyway, but sleepers from before the
                // close cannot exist (receivers drop awake), so no
                // notify is owed. The refused value leads the
                // remainder, still in send order.
                return Err(SendError(std::mem::take(&mut self.scratch)));
            }
            // One engine batch acquisition for the whole run of values
            // the shard will take (the engine amortizes its per-op
            // fixed costs internally).
            let n = self.handle.try_enqueue_batch(&mut self.scratch);
            sent += n;
            if !self.scratch.is_empty() {
                // Full mid-batch: values enqueued so far have not been
                // notified yet; a parked receiver must be woken to
                // drain the full shard, or this retry loop would never
                // terminate.
                self.chan.notify_one();
                std::thread::yield_now();
            }
        }
        self.chan.notify_many(sent);
        Ok(sent)
    }
}

impl<T: Send, Q: ConcurrentQueue<T>> Drop for Sender<'_, T, Q> {
    fn drop(&mut self) {
        self.chan.sender_dropped();
    }
}
