//! The producing half: sticky-shard routing, non-blocking sends,
//! parked blocking sends with deadlines, and batched sends.

use crate::chaos_hooks::inject;
use crate::{Channel, Gate, SendError, SendTimeoutError, TrySendError, WaitGuard, WaiterKind};
use crate::TICK_STRIDE;
use queue_traits::{ConcurrentQueue, QueueHandle};
use std::time::{Duration, Instant};

/// Why a send could not complete right now (internal refinement of
/// [`TrySendError::Full`]: the park loop treats the two `Full` causes
/// differently).
enum Refusal<T> {
    /// Every receiver dropped.
    Disconnected(T),
    /// The engine refused (bounded ring at capacity). Parking on this
    /// is Dekker-sound: receivers notify the shard's capacity registry
    /// after every dequeue, so an unbounded park is safe.
    Engine(T),
    /// The admission gate refused (quota or quarantine). The gauges
    /// behind the gate are advisory, so parks on this must re-poll on
    /// a bound instead of relying on a wakeup.
    Gate(T),
}

/// A producer handle. Pinned to one shard for its whole lifetime, which
/// is what makes the channel FIFO-per-producer (DESIGN.md §15): every
/// value a sender emits goes through the same linearizable FIFO. (The
/// opt-in [`QuarantinePolicy::Reroute`] relaxes exactly this.)
///
/// Not `Clone` — mint more senders from the [`Channel`].
pub struct Sender<'a, T: Send, Q: ConcurrentQueue<T>> {
    chan: &'a Channel<T, Q>,
    handle: Q::Handle<'a>,
    shard: usize,
    /// Reusable staging buffer for `send_batch` — the batch is buffered
    /// here once, then handed to the engine's `try_enqueue_batch`, so
    /// the steady state allocates nothing per batch.
    scratch: Vec<T>,
    /// Lazily minted engine handles on reroute-target shards
    /// (`Reroute` policy only); empty until the first reroute, so the
    /// default policy pays nothing for the machinery.
    alts: Vec<Option<Q::Handle<'a>>>,
    /// Stride counter for opportunistic watchdog ticks.
    pace: u32,
}

impl<'a, T: Send, Q: ConcurrentQueue<T>> Sender<'a, T, Q> {
    pub(crate) fn new(chan: &'a Channel<T, Q>, handle: Q::Handle<'a>, shard: usize) -> Self {
        Sender { chan, handle, shard, scratch: Vec::new(), alts: Vec::new(), pace: 0 }
    }

    /// The shard this sender is pinned to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Strided watchdog tick: one `Instant::now` per [`TICK_STRIDE`]
    /// sends, zero when overload control is off.
    fn tick(&mut self) {
        self.pace = self.pace.wrapping_add(1);
        if self.pace.is_multiple_of(TICK_STRIDE) {
            self.chan.maybe_tick();
        }
    }

    /// Makes sure a lazy engine handle exists for foreign `shard`.
    /// `false` means the shard's thread capacity refused one (treated
    /// as a refusal — the stock constructors size every shard for
    /// every sender, so this only happens under exotic `with_factory`
    /// setups).
    fn ensure_alt(&mut self, shard: usize) -> bool {
        if self.alts.is_empty() {
            self.alts = (0..self.chan.shards()).map(|_| None).collect();
        }
        if self.alts[shard].is_none() {
            match self.chan.shard_queue(shard).register() {
                Ok(h) => self.alts[shard] = Some(h),
                Err(_) => return false,
            }
        }
        true
    }

    /// Enqueues on `shard`, minting a lazy handle for foreign shards.
    /// `Err` hands the value back: the shard's engine is full or
    /// refused a handle.
    fn enqueue_on(&mut self, shard: usize, value: T) -> Result<(), T> {
        if shard == self.shard {
            return self.handle.try_enqueue(value);
        }
        if !self.ensure_alt(shard) {
            return Err(value);
        }
        self.alts[shard].as_mut().expect("just minted").try_enqueue(value)
    }

    /// One admission check + enqueue attempt, classifying the refusal.
    fn try_send_inner(&mut self, value: T) -> Result<(), Refusal<T>> {
        if self.chan.rx_closed() {
            return Err(Refusal::Disconnected(value));
        }
        match self.chan.admit(self.shard) {
            Gate::Admit => match self.handle.try_enqueue(value) {
                Ok(()) => {
                    self.chan.notify_one();
                    Ok(())
                }
                Err(v) => Err(Refusal::Engine(v)),
            },
            Gate::Refuse { reroute } => {
                if reroute {
                    if let Some(t) = self.chan.reroute_target(self.shard) {
                        return match self.enqueue_on(t, value) {
                            Ok(()) => {
                                self.chan.notify_one();
                                Ok(())
                            }
                            // The detour shard is also refusing; treat
                            // as a gate refusal (bounded re-poll).
                            Err(v) => Err(Refusal::Gate(v)),
                        };
                    }
                }
                Err(Refusal::Gate(value))
            }
        }
    }

    /// Attempts to send without blocking. Fails with
    /// [`TrySendError::Full`] if this sender's shard refuses the value
    /// — at capacity (bounded cores), over its admission quota, or
    /// quarantined — and [`TrySendError::Disconnected`] once every
    /// receiver has dropped.
    pub fn try_send(&mut self, value: T) -> Result<(), TrySendError<T>> {
        inject!("chan.route");
        self.tick();
        match self.try_send_inner(value) {
            Ok(()) => Ok(()),
            Err(Refusal::Disconnected(v)) => Err(TrySendError::Disconnected(v)),
            Err(Refusal::Engine(v)) | Err(Refusal::Gate(v)) => Err(TrySendError::Full(v)),
        }
    }

    /// Sends, treating a refusing shard as backpressure: parks on the
    /// shard's capacity registry until a receiver frees a slot (or the
    /// shard is re-admitted) or the channel disconnects.
    pub fn send(&mut self, value: T) -> Result<(), SendError<T>> {
        match self.send_until(value, None) {
            Ok(()) => Ok(()),
            Err(SendTimeoutError::Disconnected(v)) => Err(SendError(v)),
            Err(SendTimeoutError::Timeout(_)) => unreachable!("no deadline was set"),
        }
    }

    /// [`send`](Sender::send) with an upper bound on the wait: returns
    /// [`SendTimeoutError::Timeout`] (value handed back) once
    /// `timeout` has elapsed with the shard still refusing. Never
    /// returns `Timeout` before the deadline has actually passed.
    pub fn send_timeout(&mut self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        self.send_until(value, Some(Instant::now() + timeout))
    }

    /// [`send_timeout`](Sender::send_timeout) against an absolute
    /// deadline.
    pub fn send_deadline(&mut self, value: T, deadline: Instant) -> Result<(), SendTimeoutError<T>> {
        self.send_until(value, Some(deadline))
    }

    fn send_until(
        &mut self,
        value: T,
        deadline: Option<Instant>,
    ) -> Result<(), SendTimeoutError<T>> {
        let mut v = value;
        loop {
            inject!("chan.route");
            self.tick();
            match self.try_send_inner(v) {
                Ok(()) => return Ok(()),
                Err(Refusal::Disconnected(x)) => return Err(SendTimeoutError::Disconnected(x)),
                Err(Refusal::Engine(x)) | Err(Refusal::Gate(x)) => v = x,
            }
            // The shard refused: park on its capacity registry.
            // Dekker publish: register (gauge up, SeqCst), then
            // re-check. A receiver's dequeue either sees the gauge or
            // this re-check sees the freed slot / recovered shard. The
            // guard keeps the token pass-on rule through unwinds (a
            // chaos kill inside the engine call below).
            inject!("chan.send_park");
            let guard =
                WaitGuard::new(self.chan.tx_registry(self.shard), WaiterKind::Thread(std::thread::current()));
            let gated = match self.try_send_inner(v) {
                Ok(()) => {
                    guard.finish();
                    return Ok(());
                }
                Err(Refusal::Disconnected(x)) => {
                    guard.finish();
                    return Err(SendTimeoutError::Disconnected(x));
                }
                Err(Refusal::Engine(x)) => {
                    v = x;
                    false
                }
                Err(Refusal::Gate(x)) => {
                    v = x;
                    true
                }
            };
            // Gate refusals re-poll on a bound — their gauges are
            // advisory, so no wakeup is owed to them. Engine refusals
            // may wait indefinitely (receivers notify this registry).
            let poll = gated.then(|| self.chan.gate_poll_interval());
            let wait = match (deadline, poll) {
                (None, None) => None,
                (None, Some(p)) => Some(p),
                (Some(dl), p) => {
                    let now = Instant::now();
                    if now >= dl {
                        // Deadline already passed: the registered
                        // re-check above was the final attempt.
                        guard.finish();
                        return Err(SendTimeoutError::Timeout(v));
                    }
                    let left = dl - now;
                    Some(p.map_or(left, |p| p.min(left)))
                }
            };
            match wait {
                None => std::thread::park(),
                Some(d) => std::thread::park_timeout(d),
            }
            // Whether woken, timed out, or spurious: withdraw, passing
            // on any token a notifier spent on us while we were out.
            guard.finish();
            // Keep the watchdog moving: with a stalled consumer the
            // parked senders may be the only live threads.
            self.chan.maybe_tick();
            if let Some(dl) = deadline {
                if Instant::now() >= dl {
                    // One final attempt so a just-freed slot beats the
                    // timeout; `Timeout` is only ever reported after
                    // the deadline has truly passed.
                    return match self.try_send_inner(v) {
                        Ok(()) => Ok(()),
                        Err(Refusal::Disconnected(x)) => {
                            Err(SendTimeoutError::Disconnected(x))
                        }
                        Err(Refusal::Engine(x)) | Err(Refusal::Gate(x)) => {
                            Err(SendTimeoutError::Timeout(x))
                        }
                    };
                }
            }
        }
    }

    /// One admission check + engine batch flush of `scratch`. Returns
    /// how many values were enqueued and whether a refusal came from
    /// the gate (advisory → bounded re-poll) rather than the engine.
    fn flush_batch(&mut self) -> (usize, bool) {
        match self.chan.admit(self.shard) {
            Gate::Admit => (self.handle.try_enqueue_batch(&mut self.scratch), false),
            Gate::Refuse { reroute } => {
                if reroute {
                    if let Some(t) = self.chan.reroute_target(self.shard) {
                        if self.ensure_alt(t) {
                            // Route the remainder through the detour
                            // shard, preserving its internal order.
                            let h = self.alts[t].as_mut().expect("just minted");
                            return (h.try_enqueue_batch(&mut self.scratch), true);
                        }
                    }
                }
                (0, true)
            }
        }
    }

    /// Sends every value of a batch through the sticky shard, then
    /// notifies sleepers once per blocked stretch — one gauge check
    /// and at most `batch`-many wakes for the whole burst, instead of
    /// one per value. A refusing shard is treated as backpressure: the
    /// sender parks on the shard's capacity registry (one registration
    /// per blocked stretch, not a wake per spin).
    ///
    /// Returns how many values were sent. If the channel disconnects
    /// mid-batch, the unsent remainder (the refused value included)
    /// comes back in the error.
    pub fn send_batch(
        &mut self,
        batch: impl IntoIterator<Item = T>,
    ) -> Result<usize, SendError<Vec<T>>> {
        inject!("chan.batch");
        debug_assert!(self.scratch.is_empty());
        self.scratch.extend(batch);
        let mut sent = 0;
        let mut unnotified = 0;
        while !self.scratch.is_empty() {
            self.tick();
            if self.chan.rx_closed() {
                // Receivers are gone; earlier values of the batch are
                // unrecoverable anyway, and sleepers from before the
                // close cannot exist (receivers drop awake), so no
                // notify is owed. The refused value leads the
                // remainder, still in send order.
                return Err(SendError(std::mem::take(&mut self.scratch)));
            }
            let (n, _) = self.flush_batch();
            sent += n;
            unnotified += n;
            if self.scratch.is_empty() {
                break;
            }
            // Blocked mid-batch. Hand receivers everything enqueued so
            // far (they must drain the shard for the batch to move),
            // then park behind one registration.
            self.chan.notify_many(unnotified);
            unnotified = 0;
            inject!("chan.send_park");
            let guard =
                WaitGuard::new(self.chan.tx_registry(self.shard), WaiterKind::Thread(std::thread::current()));
            let (n2, gated) = self.flush_batch();
            sent += n2;
            unnotified += n2;
            if n2 == 0 && !self.scratch.is_empty() && !self.chan.rx_closed() {
                // No progress with the registration published: park.
                // Bounded when the refusal is advisory (gate), since
                // no wakeup is owed to it; unbounded when the ring is
                // full (receivers notify on every dequeue).
                match gated.then(|| self.chan.gate_poll_interval()) {
                    None => std::thread::park(),
                    Some(p) => std::thread::park_timeout(p),
                }
            }
            guard.finish();
            self.chan.maybe_tick();
        }
        self.chan.notify_many(unnotified);
        Ok(sent)
    }
}

impl<T: Send, Q: ConcurrentQueue<T>> Drop for Sender<'_, T, Q> {
    fn drop(&mut self) {
        self.chan.sender_dropped();
    }
}
