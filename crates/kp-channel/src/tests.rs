//! Unit tests for the channel layer. Cross-engine integration and
//! chaos coverage live in the workspace suites (`tests/channel.rs`,
//! `tests/torture.rs`).

use crate::{Channel, ChannelConfig, RecvTimeoutError, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

fn small_cfg() -> ChannelConfig {
    ChannelConfig::new().with_max_senders(4).with_max_receivers(4)
}

fn roundtrip<Q: queue_traits::ConcurrentQueue<u64>>(label: &str, chan: &Channel<u64, Q>) {
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    for v in 0..100 {
        tx.send(v).unwrap();
    }
    for v in 0..100 {
        assert_eq!(rx.try_recv(), Ok(v), "core {label}");
    }
    assert_eq!(rx.try_recv(), Err(TryRecvError::Empty), "core {label}");
}

#[test]
fn roundtrip_both_cores() {
    // Capacity must cover the whole burst: one sticky sender, nobody
    // draining until the sends are done.
    roundtrip("wcq", &Channel::<u64, _>::wcq(small_cfg().with_shards(2), 128));
    roundtrip("kp", &Channel::<u64, _>::kp(small_cfg().with_shards(2)));
}

#[test]
fn full_surfaces_on_bounded_core() {
    let chan = Channel::<u64, _>::wcq(small_cfg(), 8);
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    let mut accepted = 0;
    loop {
        match tx.try_send(accepted) {
            Ok(()) => accepted += 1,
            Err(TrySendError::Full(v)) => {
                assert_eq!(v, accepted);
                break;
            }
            Err(e) => panic!("unexpected {e}"),
        }
        assert!(accepted <= 16, "capacity 8 ring accepted too much");
    }
    assert!(accepted >= 8, "ring of capacity 8 accepted only {accepted}");
    // Draining frees slots again.
    assert_eq!(rx.try_recv(), Ok(0));
    tx.try_send(999).unwrap();
}

#[test]
fn disconnect_drains_then_errors() {
    let chan = Channel::<u64, _>::wcq(small_cfg().with_shards(3), 64);
    let mut rx = chan.receiver();
    {
        let mut tx = chan.sender();
        tx.send_batch(0..10).unwrap();
    } // last sender drops: disconnect latches
    assert!(chan.is_disconnected());
    let mut got = Vec::new();
    loop {
        match rx.try_recv() {
            Ok(v) => got.push(v),
            Err(TryRecvError::Disconnected) => break,
            Err(TryRecvError::Empty) => panic!("Empty after disconnect latch"),
        }
    }
    got.sort_unstable();
    assert_eq!(got, (0..10).collect::<Vec<_>>());
}

#[test]
fn send_fails_when_receivers_gone() {
    let chan = Channel::<u64, _>::kp(small_cfg());
    let mut tx = chan.sender();
    drop(chan.receiver());
    assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
    assert!(tx.send(2).is_err());
    let err = tx.send_batch(0..5).unwrap_err();
    assert_eq!(err.0.len(), 5, "whole batch handed back");
}

#[test]
fn batch_recv_prefers_current_shard() {
    let chan = Channel::<u64, _>::wcq(small_cfg().with_shards(4), 64);
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    assert_eq!(tx.send_batch(0..32).unwrap(), 32);
    let mut out = Vec::new();
    let n = rx.recv_batch(&mut out, 32).unwrap();
    // One sender: everything sits on one shard, one batch drains it
    // in FIFO order.
    assert_eq!(n, 32);
    assert_eq!(out, (0..32).collect::<Vec<_>>());
}

#[test]
fn blocking_recv_wakes_on_send() {
    let chan = Channel::<u64, _>::wcq(small_cfg().with_shards(2), 64);
    let mut tx = chan.sender();
    std::thread::scope(|s| {
        let consumer = s.spawn(|| {
            let mut rx = chan.receiver();
            rx.recv_timeout(Duration::from_secs(10)).expect("wakeup lost")
        });
        // Give the consumer a chance to actually park.
        std::thread::sleep(Duration::from_millis(50));
        tx.send(7).unwrap();
        assert_eq!(consumer.join().unwrap(), 7);
    });
}

#[test]
fn recv_timeout_expires_empty() {
    let chan = Channel::<u64, _>::kp(small_cfg());
    let _tx = chan.sender(); // keep connected so it is a true timeout
    let mut rx = chan.receiver();
    let t0 = std::time::Instant::now();
    assert_eq!(
        rx.recv_timeout(Duration::from_millis(20)),
        Err(RecvTimeoutError::Timeout)
    );
    assert!(t0.elapsed() >= Duration::from_millis(20));
}

/// A test waker that records wakes without atomics (the audit keeps
/// test scaffolding out of the manifest only when it stays lock-based).
struct FlagWaker(Mutex<bool>);

impl FlagWaker {
    fn woken(self: &Arc<Self>) -> bool {
        *self.0.lock().unwrap()
    }
}

impl Wake for FlagWaker {
    fn wake(self: Arc<Self>) {
        *self.0.lock().unwrap() = true;
    }
}

#[test]
fn poll_recv_pending_then_woken() {
    let chan = Channel::<u64, _>::wcq(small_cfg(), 64);
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    let flag = Arc::new(FlagWaker(Mutex::new(false)));
    let waker = Waker::from(flag.clone());
    let mut cx = Context::from_waker(&waker);
    assert!(matches!(rx.poll_recv(&mut cx), Poll::Pending));
    assert!(!flag.woken());
    tx.send(41).unwrap();
    assert!(flag.woken(), "send must wake the pending receiver");
    assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(Some(41)));
    drop(tx);
    assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(None), "disconnect resolves to None");
}

#[test]
fn poll_recv_rearms_fresh_waker() {
    let chan = Channel::<u64, _>::kp(small_cfg());
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    let stale = Arc::new(FlagWaker(Mutex::new(false)));
    let fresh = Arc::new(FlagWaker(Mutex::new(false)));
    let stale_w = Waker::from(stale.clone());
    let fresh_w = Waker::from(fresh.clone());
    assert!(matches!(rx.poll_recv(&mut Context::from_waker(&stale_w)), Poll::Pending));
    assert!(matches!(rx.poll_recv(&mut Context::from_waker(&fresh_w)), Poll::Pending));
    tx.send(1).unwrap();
    assert!(fresh.woken(), "latest waker must fire");
    assert!(!stale.woken(), "stale waker must have been replaced, not duplicated");
    assert_eq!(rx.poll_recv(&mut Context::from_waker(&fresh_w)), Poll::Ready(Some(1)));
}

#[test]
fn fifo_per_producer_under_contention() {
    const PRODUCERS: usize = 3;
    const CONSUMERS: usize = 2;
    const PER_PRODUCER: u64 = 2_000;
    let chan = Channel::<u64, _>::wcq(
        ChannelConfig::new()
            .with_shards(2)
            .with_max_senders(PRODUCERS)
            .with_max_receivers(CONSUMERS),
        256,
    );
    let received: Mutex<Vec<Vec<u64>>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        let mut producers = Vec::new();
        for p in 0..PRODUCERS as u64 {
            let mut tx = chan.sender();
            producers.push(s.spawn(move || {
                for seq in 0..PER_PRODUCER {
                    tx.send((p << 48) | seq).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let mut rx = chan.receiver();
            let received = &received;
            consumers.push(s.spawn(move || {
                let mut got = Vec::new();
                let mut buf = Vec::new();
                while rx.recv_batch(&mut buf, 64).is_ok() {
                    got.append(&mut buf);
                }
                received.lock().unwrap().push(got);
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        // Producers (and their senders) are gone; consumers drain out.
        for c in consumers {
            c.join().unwrap();
        }
    });
    let all = received.lock().unwrap();
    let mut seen: Vec<u64> = all.iter().flatten().copied().collect();
    assert_eq!(seen.len() as u64, PRODUCERS as u64 * PER_PRODUCER, "exactly-once");
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len() as u64, PRODUCERS as u64 * PER_PRODUCER, "no duplicates");
    // FIFO per producer: within one consumer, each producer's sequence
    // numbers must be strictly increasing.
    for got in all.iter() {
        let mut last = [None::<u64>; PRODUCERS];
        for &v in got {
            let (p, seq) = ((v >> 48) as usize, v & 0xffff_ffff_ffff);
            if let Some(prev) = last[p] {
                assert!(seq > prev, "producer {p} reordered: {seq} after {prev}");
            }
            last[p] = Some(seq);
        }
    }
}

// ---- overload control (DESIGN.md §16) ----

use crate::{HealthState, OverloadConfig, QuarantinePolicy, SendTimeoutError};
use std::time::Instant;

/// An aggressive watchdog for tests: 1 ms ticks, 2-tick / 5 ms freeze
/// oracle, 2 ms probe pacing.
fn hair_trigger(quota: usize) -> OverloadConfig {
    OverloadConfig::disabled()
        .with_depth_quota(quota)
        .with_watchdog(2, Duration::from_millis(5))
        .with_tick_interval(Duration::from_millis(1))
        .with_probe_interval(Duration::from_millis(2))
}

#[test]
fn health_snapshot_is_quiet_by_default() {
    let chan = Channel::<u64, _>::wcq(small_cfg().with_shards(3), 16);
    let snap = chan.health_snapshot();
    assert_eq!(snap.shards.len(), 3);
    assert_eq!(snap.quarantined(), 0);
    for s in &snap.shards {
        assert_eq!(s.state, HealthState::Healthy);
        assert_eq!(s.capacity, Some(16));
        assert_eq!(s.depth, Some(0));
        assert_eq!(s.tx_sleepers, 0);
    }
    assert_eq!(snap.rx_sleepers, 0);
    assert_eq!(snap.rx_parks, 0);
}

#[test]
fn parked_send_completes_when_receiver_drains() {
    let chan = Channel::<u64, _>::wcq(small_cfg(), 8);
    std::thread::scope(|s| {
        let mut tx = chan.sender();
        let mut rx = chan.receiver();
        for v in 0..8 {
            tx.try_send(v).unwrap();
        }
        assert!(matches!(tx.try_send(8), Err(TrySendError::Full(8))));
        let sender = s.spawn(move || {
            // Blocks parked (no spinning) until the drain below.
            tx.send(8).unwrap();
            tx
        });
        // Give the sender time to actually park, then drain one slot.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(rx.recv(), Ok(0));
        let tx = sender.join().expect("parked sender never completed");
        // The shard now holds 1..=8.
        for v in 1..=8 {
            assert_eq!(rx.recv(), Ok(v));
        }
        drop(tx);
    });
    let snap = chan.health_snapshot();
    assert!(snap.shards[0].tx_parks >= 1, "send must have parked, not spun: {snap:?}");
}

#[test]
fn send_timeout_expires_full_and_never_early() {
    let chan = Channel::<u64, _>::wcq(small_cfg(), 8);
    let mut tx = chan.sender();
    let _rx = chan.receiver();
    for v in 0..8 {
        tx.try_send(v).unwrap();
    }
    let timeout = Duration::from_millis(40);
    let start = Instant::now();
    match tx.send_timeout(99, timeout) {
        Err(SendTimeoutError::Timeout(99)) => {}
        other => panic!("expected Timeout(99), got {other:?}"),
    }
    assert!(start.elapsed() >= timeout, "Timeout reported before the deadline passed");
}

#[test]
fn send_timeout_reports_disconnect() {
    let chan = Channel::<u64, _>::wcq(small_cfg(), 8);
    let mut tx = chan.sender();
    drop(chan.receiver());
    assert_eq!(
        tx.send_timeout(7, Duration::from_millis(10)),
        Err(SendTimeoutError::Disconnected(7))
    );
}

#[test]
fn parked_sender_wakes_on_disconnect() {
    let chan = Channel::<u64, _>::wcq(small_cfg(), 8);
    std::thread::scope(|s| {
        let mut tx = chan.sender();
        let rx = chan.receiver();
        for v in 0..8 {
            tx.try_send(v).unwrap();
        }
        let sender = s.spawn(move || tx.send(8));
        std::thread::sleep(Duration::from_millis(50));
        // Last receiver leaves: the parked sender must wake and fail.
        drop(rx);
        assert!(matches!(sender.join().unwrap(), Err(crate::SendError(8))));
    });
}

#[test]
fn admission_quota_backpressures_unbounded_core() {
    // Unbounded KP shard, soft quota of 16: the engine never says
    // full, the gate does.
    let chan =
        Channel::<u64, _>::kp(small_cfg().with_overload(OverloadConfig::disabled().with_depth_quota(16)));
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    let mut accepted = 0u64;
    let refused = loop {
        match tx.try_send(accepted) {
            Ok(()) => accepted += 1,
            Err(TrySendError::Full(v)) => break v,
            Err(TrySendError::Disconnected(_)) => panic!("receiver live"),
        }
    };
    // Soft quota: refusal trips once depth *exceeds* the quota.
    assert_eq!(accepted, 17, "quota 16 admits 17th value, refuses 18th");
    assert_eq!(refused, 17);
    // Draining below the quota re-admits.
    for _ in 0..4 {
        rx.try_recv().unwrap();
    }
    tx.try_send(refused).expect("under quota again");
}

#[test]
fn watchdog_quarantines_and_readmits_stalled_shard() {
    let chan = Channel::<u64, _>::kp(small_cfg().with_shards(1).with_overload(hair_trigger(8)));
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    // Overfill past the quota; nobody drains: the shard must go
    // Suspect → Quarantined within the oracle's patience.
    let mut v = 0u64;
    while tx.try_send(v).is_ok() {
        v += 1;
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while chan.health_snapshot().quarantined() == 0 {
        assert!(Instant::now() < deadline, "watchdog never quarantined: {:?}", chan.health_snapshot());
        // Refused sends keep ticking the watchdog.
        let _ = tx.try_send(v);
        std::thread::sleep(Duration::from_millis(2));
    }
    let snap = chan.health_snapshot();
    assert_eq!(snap.shards[0].state, HealthState::Quarantined);
    assert!(snap.shards[0].quarantines >= 1);
    // Consumer recovers: drain everything. Re-admission is checked
    // inline on the next refused send.
    let mut got = 0;
    while rx.try_recv().is_ok() {
        got += 1;
    }
    assert_eq!(got, v, "no values lost across quarantine");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if tx.try_send(1_000_000).is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "drained shard never re-admitted");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(chan.health_snapshot().shards[0].state, HealthState::Healthy);
    assert_eq!(rx.try_recv(), Ok(1_000_000));
}

#[test]
fn reroute_policy_detours_around_quarantine() {
    let cfg = small_cfg()
        .with_shards(2)
        .with_overload(hair_trigger(8).with_policy(QuarantinePolicy::Reroute));
    let chan = Channel::<u64, _>::kp(cfg);
    let mut tx = chan.sender(); // sticky on shard 0
    assert_eq!(tx.shard(), 0);
    let mut rx = chan.receiver();
    let mut sent = 0u64;
    // Overfill shard 0 past its quota, then keep sending until the
    // watchdog quarantines it; Reroute means sends keep succeeding.
    let deadline = Instant::now() + Duration::from_secs(10);
    while chan.health_snapshot().shards[0].state != HealthState::Quarantined {
        assert!(Instant::now() < deadline, "shard 0 never quarantined");
        if tx.try_send(sent).is_ok() {
            sent += 1;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // With shard 0 quarantined, sends detour to shard 1 (modulo the
    // occasional paced probe landing on shard 0).
    let before = chan.health_snapshot().shards[1].depth.unwrap();
    for _ in 0..32 {
        tx.send(sent).unwrap();
        sent += 1;
    }
    let after = chan.health_snapshot().shards[1].depth.unwrap();
    assert!(after > before, "rerouted values must land on the healthy shard");
    // Exactly-once across the detour: drain everything.
    let mut got = std::collections::HashSet::new();
    while let Ok(v) = rx.try_recv() {
        assert!(got.insert(v), "duplicate {v}");
    }
    assert_eq!(got.len() as u64, sent, "lost values across reroute");
}
