//! Overload control: admission quotas and the shard-health watchdog
//! (DESIGN.md §16).
//!
//! Three cooperating mechanisms, all off by default:
//!
//! - **Admission quotas** convert sends into `Full` backpressure before
//!   an *unbounded* engine melts: a soft depth quota checked against
//!   the engine's counter-derived [`depth_hint`], and a pressure quota
//!   checked against the per-tick growth of the engine's
//!   [`pressure_hint`] (the PR-6 `cache_overflows` signal). Bounded
//!   engines already refuse at capacity; quotas compose with that.
//! - The **shard-health watchdog** runs the reaper's freeze-oracle
//!   pattern at channel granularity: a shard that looks overloaded
//!   becomes *Suspect*; if its drain counter then fails to advance for
//!   `stall_ticks` consecutive ticks *and* `min_stall` of wall time
//!   (both must pass — ticks alone are too fast under scheduler noise,
//!   wall time alone too slow under load), it is *Quarantined*.
//! - **Quarantine** refuses the shard's sends under the configured
//!   [`QuarantinePolicy`], letting one paced *probe* send through per
//!   `probe_interval` so a recovered consumer shows up as drain
//!   progress; progress plus a sub-quota depth re-admits the shard.
//!
//! The gauges are *advisory* — monotonic relaxed counters, exact only
//! at quiescence — so nothing here may carry a liveness obligation on
//! its own: every refusal path in the sender pairs a gauge decision
//! with a bounded re-poll (`park_timeout`), never an unbounded park.
//! The watchdog itself needs no thread: send/receive paths tick it
//! through a stride counter, and ticks are claimed by CAS so one
//! thread at a time runs the state machine.
//!
//! [`depth_hint`]: queue_traits::ConcurrentQueue::depth_hint
//! [`pressure_hint`]: queue_traits::ConcurrentQueue::pressure_hint

use kp_sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// What a quarantined shard does with the sends routed to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuarantinePolicy {
    /// Refuse the send (`Full`): the producer blocks or sheds load,
    /// and FIFO-per-producer is preserved — a producer's values never
    /// take a detour around its earlier ones. The default.
    #[default]
    Backpressure,
    /// Route the send to the next healthy shard instead. Keeps
    /// producers moving while one consumer is wedged, **but breaks
    /// FIFO-per-producer across the reroute boundary**: values sent
    /// after the reroute can be received before values parked in the
    /// quarantined shard. Opt in only when ordering does not matter.
    Reroute,
}

/// Knobs for the overload subsystem. [`OverloadConfig::disabled`] (the
/// default) compiles the whole thing down to one branch per send.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Soft cap on a shard's resident values; a send finding the depth
    /// gauge above it is refused `Full`. `None` disables depth
    /// admission. Meaningful for unbounded engines; engines without a
    /// depth gauge (`stats` feature off) ignore it.
    pub depth_quota: Option<usize>,
    /// Cap on a shard's *per-tick growth* of the memory-pressure
    /// signal (engine cache/pool overflow events). Growth is compared
    /// per watchdog tick, so the signal recovers when pressure stops —
    /// the raw counter is monotonic and would latch forever. `None`
    /// disables pressure admission.
    pub pressure_quota: Option<u64>,
    /// What quarantined shards do with sends. Ignored while the
    /// watchdog is off.
    pub policy: QuarantinePolicy,
    /// Enables the shard-health watchdog (Suspect → Quarantine
    /// transitions). Without it, quotas still apply but shards are
    /// never quarantined.
    pub watchdog: bool,
    /// Consecutive no-drain-progress ticks before a Suspect shard is
    /// quarantined (the freeze oracle's patience).
    pub stall_ticks: u32,
    /// Wall-clock floor on the same transition: Suspect for at least
    /// this long, regardless of how fast ticks fire.
    pub min_stall: Duration,
    /// Target spacing of watchdog ticks. Ticks are claimed oppor-
    /// tunistically from send/receive paths, so this is a floor, not a
    /// schedule: an idle channel ticks late or never (and an idle
    /// shard cannot be quarantined — nothing is being refused).
    pub tick_interval: Duration,
    /// Spacing of probe sends admitted into a quarantined shard, and
    /// the re-poll bound for senders parked on an advisory-gauge
    /// refusal.
    pub probe_interval: Duration,
}

impl OverloadConfig {
    /// Everything off: no quotas, no watchdog, zero per-send cost
    /// beyond one branch.
    pub fn disabled() -> Self {
        OverloadConfig {
            depth_quota: None,
            pressure_quota: None,
            policy: QuarantinePolicy::Backpressure,
            watchdog: false,
            stall_ticks: 4,
            min_stall: Duration::from_millis(20),
            tick_interval: Duration::from_millis(5),
            probe_interval: Duration::from_millis(10),
        }
    }

    /// Sets the depth quota (see [`depth_quota`](Self::depth_quota)).
    pub fn with_depth_quota(mut self, quota: usize) -> Self {
        assert!(quota >= 1, "a zero quota would refuse every send");
        self.depth_quota = Some(quota);
        self
    }

    /// Sets the pressure quota (per-tick overflow-event growth).
    pub fn with_pressure_quota(mut self, quota: u64) -> Self {
        self.pressure_quota = Some(quota);
        self
    }

    /// Sets the quarantine policy.
    pub fn with_policy(mut self, policy: QuarantinePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the watchdog with the given freeze-oracle patience.
    pub fn with_watchdog(mut self, stall_ticks: u32, min_stall: Duration) -> Self {
        assert!(stall_ticks >= 1, "patience of zero would quarantine on first sight");
        self.watchdog = true;
        self.stall_ticks = stall_ticks;
        self.min_stall = min_stall;
        self
    }

    /// Sets the watchdog tick spacing.
    pub fn with_tick_interval(mut self, interval: Duration) -> Self {
        self.tick_interval = interval;
        self
    }

    /// Sets the probe-send spacing / refusal re-poll bound.
    pub fn with_probe_interval(mut self, interval: Duration) -> Self {
        assert!(interval > Duration::ZERO, "probes need a nonzero pace");
        self.probe_interval = interval;
        self
    }

    /// Whether any mechanism is on (the one branch the disabled
    /// configuration pays).
    pub(crate) fn enabled(&self) -> bool {
        self.depth_quota.is_some() || self.pressure_quota.is_some() || self.watchdog
    }
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig::disabled()
    }
}

/// A shard's position in the watchdog state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Accepting sends normally.
    Healthy,
    /// Looked overloaded at a tick; the freeze oracle is counting
    /// no-progress ticks. Still accepting sends.
    Suspect,
    /// Confirmed stalled: sends are refused (or rerouted) except for
    /// paced probes.
    Quarantined,
}

const ST_HEALTHY: u8 = 0;
const ST_SUSPECT: u8 = 1;
const ST_QUARANTINED: u8 = 2;

fn decode(st: u8) -> HealthState {
    match st {
        ST_HEALTHY => HealthState::Healthy,
        ST_SUSPECT => HealthState::Suspect,
        _ => HealthState::Quarantined,
    }
}

/// One tick's worth of engine gauges for a shard, read by the tick
/// claimant and handed to [`ShardHealth::observe`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Gauges {
    pub(crate) depth: Option<usize>,
    pub(crate) capacity: Option<usize>,
    pub(crate) drained: Option<u64>,
    pub(crate) pressure: u64,
}

/// State-machine events the channel layer reacts to (chaos sites,
/// waking parked senders).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HealthEvent {
    Quarantined,
    Readmitted,
}

/// Per-shard watchdog state. All fields are atomics because senders
/// read the state (and CAS re-admission) concurrently with the tick
/// claimant; orderings are Acquire/Release on `state` — the gauges it
/// summarizes are advisory, so the state word itself is the only
/// cross-thread handoff — and Relaxed on the pure statistics.
pub(crate) struct ShardHealth {
    state: AtomicU8,
    /// `1` while the last tick saw pressure growth over quota; senders
    /// read it instead of recomputing the delta (which would race the
    /// tick claimant's `prev_pressure` swap).
    hot: AtomicU8,
    /// Pressure reading at the previous tick (delta base).
    prev_pressure: AtomicU64,
    /// Drain counter at suspicion time: the freeze-oracle baseline.
    baseline_drained: AtomicU64,
    /// Consecutive no-progress ticks while Suspect.
    stall_ticks: AtomicU32,
    /// Wall clock (channel-epoch ms) when suspicion started.
    suspect_since_ms: AtomicU64,
    /// Wall clock of the last probe admitted into quarantine; claimed
    /// by CAS so probes stay paced under sender contention.
    last_probe_ms: AtomicU64,
    /// Statistics: times quarantined / probes admitted.
    quarantines: AtomicU64,
    probes: AtomicU64,
}

impl ShardHealth {
    pub(crate) fn new() -> Self {
        ShardHealth {
            state: AtomicU8::new(ST_HEALTHY),
            hot: AtomicU8::new(0),
            prev_pressure: AtomicU64::new(0),
            baseline_drained: AtomicU64::new(0),
            stall_ticks: AtomicU32::new(0),
            suspect_since_ms: AtomicU64::new(0),
            last_probe_ms: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }

    pub(crate) fn state(&self) -> HealthState {
        decode(self.state.load(Ordering::Acquire))
    }

    /// Whether the last tick flagged pressure growth over quota.
    pub(crate) fn pressure_hot(&self) -> bool {
        self.hot.load(Ordering::Acquire) != 0
    }

    pub(crate) fn quarantine_count(&self) -> u64 {
        self.quarantines.load(Ordering::Relaxed)
    }

    pub(crate) fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Does the shard *look* overloaded right now? True when depth
    /// exceeds the quota, the ring is at capacity, or the last tick
    /// flagged pressure. With no gauge and no flag: healthy.
    fn overloaded(&self, g: &Gauges, cfg: &OverloadConfig) -> bool {
        if self.pressure_hot() {
            return true;
        }
        let Some(depth) = g.depth else { return false };
        if cfg.depth_quota.is_some_and(|q| depth > q) {
            return true;
        }
        g.capacity.is_some_and(|c| depth >= c)
    }

    /// One watchdog tick for this shard. Called by the single tick
    /// claimant; the only concurrent mutation is the inline
    /// re-admission CAS in [`try_readmit`](Self::try_readmit), which
    /// the Quarantined branch's own CAS arbitrates against.
    pub(crate) fn observe(
        &self,
        now_ms: u64,
        g: &Gauges,
        cfg: &OverloadConfig,
    ) -> Option<HealthEvent> {
        if let Some(quota) = cfg.pressure_quota {
            let prev = self.prev_pressure.swap(g.pressure, Ordering::Relaxed);
            let grew = g.pressure.saturating_sub(prev) > quota;
            self.hot.store(grew as u8, Ordering::Release);
        }
        if !cfg.watchdog {
            return None;
        }
        match self.state() {
            HealthState::Healthy => {
                // Suspicion needs a drain gauge to baseline against;
                // without one (stats off) the oracle cannot run.
                if let (true, Some(drained)) = (self.overloaded(g, cfg), g.drained) {
                    self.baseline_drained.store(drained, Ordering::Relaxed);
                    self.stall_ticks.store(0, Ordering::Relaxed);
                    self.suspect_since_ms.store(now_ms, Ordering::Relaxed);
                    self.state.store(ST_SUSPECT, Ordering::Release);
                }
                None
            }
            HealthState::Suspect => {
                let progressed = g
                    .drained
                    .is_some_and(|d| d > self.baseline_drained.load(Ordering::Relaxed));
                if progressed || !self.overloaded(g, cfg) {
                    self.state.store(ST_HEALTHY, Ordering::Release);
                    return None;
                }
                let ticks = self.stall_ticks.fetch_add(1, Ordering::Relaxed) + 1;
                let stalled_ms = now_ms.saturating_sub(self.suspect_since_ms.load(Ordering::Relaxed));
                if ticks >= cfg.stall_ticks && stalled_ms >= cfg.min_stall.as_millis() as u64 {
                    self.quarantines.fetch_add(1, Ordering::Relaxed);
                    // Pace the first probe a full interval out: the
                    // shard was *just* observed stalled.
                    self.last_probe_ms.store(now_ms, Ordering::Relaxed);
                    self.state.store(ST_QUARANTINED, Ordering::Release);
                    return Some(HealthEvent::Quarantined);
                }
                None
            }
            HealthState::Quarantined => self.try_readmit(g, cfg),
        }
    }

    /// Re-admission check: drain progressed past the quarantine-time
    /// baseline *and* the shard no longer looks overloaded. Runs at
    /// ticks and inline on refused sends (promptness: a recovered
    /// consumer re-admits at the next refusal, not the next tick).
    pub(crate) fn try_readmit(&self, g: &Gauges, cfg: &OverloadConfig) -> Option<HealthEvent> {
        let progressed = g
            .drained
            .is_some_and(|d| d > self.baseline_drained.load(Ordering::Relaxed));
        if progressed
            && !self.overloaded(g, cfg)
            && self
                .state
                .compare_exchange(
                    ST_QUARANTINED,
                    ST_HEALTHY,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
        {
            return Some(HealthEvent::Readmitted);
        }
        None
    }

    /// Claims the next paced probe slot, if due. The winning sender's
    /// value is admitted into the quarantined shard so a recovered
    /// consumer can prove itself by draining it.
    pub(crate) fn claim_probe(&self, now_ms: u64, cfg: &OverloadConfig) -> bool {
        let last = self.last_probe_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) < cfg.probe_interval.as_millis() as u64 {
            return false;
        }
        let won = self
            .last_probe_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok();
        if won {
            self.probes.fetch_add(1, Ordering::Relaxed);
        }
        won
    }
}

/// Operator-facing point-in-time view of one shard (see
/// [`HealthSnapshot`]).
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Watchdog state.
    pub state: HealthState,
    /// Resident-value gauge, `None` when the engine cannot say.
    pub depth: Option<usize>,
    /// Fixed capacity, `None` for unbounded engines.
    pub capacity: Option<usize>,
    /// Monotonic drained-value count, `None` when untracked.
    pub drained: Option<u64>,
    /// Monotonic memory-pressure events.
    pub pressure: u64,
    /// Times this shard has been quarantined.
    pub quarantines: u64,
    /// Probe sends admitted while quarantined.
    pub probes: u64,
    /// Senders currently parked waiting for this shard.
    pub tx_sleepers: usize,
    /// Total sender parks / wake tokens on this shard.
    pub tx_parks: u64,
    /// Total sender wakes on this shard.
    pub tx_wakes: u64,
}

/// Operator-facing point-in-time view of the channel's overload state:
/// per-shard gauges and quarantine status plus the receiver-side
/// parking counters. All numbers are advisory (relaxed reads of live
/// counters) — a monitoring surface, not a synchronization one.
#[derive(Debug, Clone)]
pub struct HealthSnapshot {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Receivers currently parked.
    pub rx_sleepers: usize,
    /// Total receiver parks.
    pub rx_parks: u64,
    /// Total receiver wake tokens spent.
    pub rx_wakes: u64,
}

impl HealthSnapshot {
    /// Shards currently quarantined.
    pub fn quarantined(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.state == HealthState::Quarantined)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OverloadConfig {
        OverloadConfig::disabled()
            .with_depth_quota(100)
            .with_watchdog(3, Duration::from_millis(10))
    }

    fn g(depth: usize, drained: u64) -> Gauges {
        Gauges { depth: Some(depth), capacity: None, drained: Some(drained), pressure: 0 }
    }

    #[test]
    fn healthy_shard_stays_healthy_under_quota() {
        let h = ShardHealth::new();
        let c = cfg();
        for t in 0..10 {
            assert_eq!(h.observe(t * 5, &g(50, t * 7), &c), None);
            assert_eq!(h.state(), HealthState::Healthy);
        }
    }

    #[test]
    fn freeze_oracle_needs_ticks_and_wall_time() {
        let h = ShardHealth::new();
        let c = cfg();
        // Over quota, no drain progress: Suspect at tick 0.
        assert_eq!(h.observe(0, &g(150, 40), &c), None);
        assert_eq!(h.state(), HealthState::Suspect);
        // Three fast ticks satisfy the tick patience but not the
        // 10 ms wall floor.
        for t in 1..=3 {
            assert_eq!(h.observe(t, &g(150, 40), &c), None);
        }
        assert_eq!(h.state(), HealthState::Suspect, "wall floor must hold the oracle");
        // A tick past the wall floor confirms.
        assert_eq!(h.observe(12, &g(150, 40), &c), Some(HealthEvent::Quarantined));
        assert_eq!(h.state(), HealthState::Quarantined);
    }

    #[test]
    fn drain_progress_clears_suspicion() {
        let h = ShardHealth::new();
        let c = cfg();
        h.observe(0, &g(150, 40), &c);
        assert_eq!(h.state(), HealthState::Suspect);
        // Consumer moved: back to Healthy even though still over quota.
        h.observe(5, &g(150, 41), &c);
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn quarantine_readmits_on_progress_under_quota() {
        let h = ShardHealth::new();
        let c = cfg();
        h.observe(0, &g(150, 40), &c);
        for t in [5, 10, 15] {
            h.observe(t, &g(150, 40), &c);
        }
        assert_eq!(h.state(), HealthState::Quarantined);
        // Progress alone is not enough while still over quota...
        assert_eq!(h.try_readmit(&g(150, 60), &c), None);
        assert_eq!(h.state(), HealthState::Quarantined);
        // ...progress plus sub-quota depth re-admits (inline path).
        assert_eq!(h.try_readmit(&g(20, 90), &c), Some(HealthEvent::Readmitted));
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.quarantine_count(), 1);
    }

    #[test]
    fn probes_are_paced() {
        let h = ShardHealth::new();
        let c = cfg().with_probe_interval(Duration::from_millis(10));
        h.observe(0, &g(150, 40), &c);
        for t in [5, 10, 15] {
            h.observe(t, &g(150, 40), &c);
        }
        assert_eq!(h.state(), HealthState::Quarantined);
        // Quarantined at t=15; the first probe is due an interval later.
        assert!(!h.claim_probe(20, &c));
        assert!(h.claim_probe(26, &c));
        assert!(!h.claim_probe(27, &c), "second claim in the window must lose");
        assert!(h.claim_probe(40, &c));
        assert_eq!(h.probe_count(), 2);
    }

    #[test]
    fn pressure_quota_is_per_tick_growth() {
        let h = ShardHealth::new();
        let c = OverloadConfig::disabled()
            .with_pressure_quota(10)
            .with_watchdog(2, Duration::from_millis(0));
        let gp = |drained: u64, pressure: u64| Gauges {
            depth: Some(0),
            capacity: None,
            drained: Some(drained),
            pressure,
        };
        // First tick absorbs the baseline jump (prev starts at 0), so
        // a large absolute count alone flags once, then recovers.
        h.observe(0, &gp(0, 500), &c);
        assert!(h.pressure_hot(), "delta 500 > 10");
        h.observe(5, &gp(0, 502), &c);
        assert!(!h.pressure_hot(), "delta 2 <= 10: monotonic counter must not latch");
    }

    #[test]
    fn no_drain_gauge_means_no_quarantine() {
        // stats feature off: drained is None — the oracle cannot
        // baseline, so it must refuse to suspect at all.
        let h = ShardHealth::new();
        let c = cfg();
        let blind = Gauges { depth: Some(1_000), capacity: None, drained: None, pressure: 0 };
        for t in 0..20 {
            assert_eq!(h.observe(t * 10, &blind, &c), None);
        }
        assert_eq!(h.state(), HealthState::Healthy);
    }
}
