//! The consuming half: shard-rotating receive, blocking receive via
//! thread parking, batched receive, and a `poll_recv`-based async
//! receive.

use crate::chaos_hooks::inject;
use crate::{Channel, RecvError, RecvTimeoutError, TryRecvError, WaiterKind};
use queue_traits::{ConcurrentQueue, QueueHandle};
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

/// A consumer handle holding one engine handle per shard.
///
/// Receivers rotate over shards, staying on a shard while it yields
/// values (batch locality) and advancing on empty (fairness). Blocking
/// ([`recv`](Receiver::recv)) and async ([`poll_recv`](Receiver::poll_recv))
/// receives share the channel's waiter registry; the no-lost-wakeup
/// argument is spelled out in DESIGN.md §15.
///
/// Not `Clone` — mint more receivers from the [`Channel`].
pub struct Receiver<'a, T: Send, Q: ConcurrentQueue<T>> {
    chan: &'a Channel<T, Q>,
    handles: Box<[Q::Handle<'a>]>,
    cursor: usize,
    /// Live async registration from a `poll_recv` that returned
    /// `Pending`; consumed (cancelled or re-armed) on the next poll or
    /// on drop.
    waiting: Option<u64>,
    /// Stride counter for opportunistic watchdog ticks.
    pace: u32,
}

impl<'a, T: Send, Q: ConcurrentQueue<T>> Receiver<'a, T, Q> {
    pub(crate) fn new(chan: &'a Channel<T, Q>, handles: Vec<Q::Handle<'a>>, cursor: usize) -> Self {
        Receiver { chan, handles: handles.into_boxed_slice(), cursor, waiting: None, pace: 0 }
    }

    /// Strided watchdog tick (see `Sender::tick`).
    fn tick(&mut self) {
        self.pace = self.pace.wrapping_add(1);
        if self.pace.is_multiple_of(crate::TICK_STRIDE) {
            self.chan.maybe_tick();
        }
    }

    /// One full rotation over the shards starting at the cursor;
    /// leaves the cursor on the shard that produced a value. Each
    /// dequeue frees a slot, so capacity-parked senders of that shard
    /// get notified (the symmetric Dekker check; DESIGN.md §16).
    fn sweep(&mut self) -> Option<T> {
        let n = self.handles.len();
        for i in 0..n {
            let s = (self.cursor + i) % n;
            if let Some(v) = self.handles[s].dequeue() {
                self.cursor = s;
                self.chan.notify_tx(s, 1);
                return Some(v);
            }
        }
        None
    }

    /// Receives without blocking.
    ///
    /// `Disconnected` is only reported after a post-latch re-sweep: the
    /// last sender's values are enqueued before its drop latches the
    /// disconnect, so a sweep that starts after observing the latch
    /// cannot miss them.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        self.tick();
        if let Some(v) = self.sweep() {
            return Ok(v);
        }
        if self.chan.tx_closed() {
            return match self.sweep() {
                Some(v) => Ok(v),
                None => Err(TryRecvError::Disconnected),
            };
        }
        Err(TryRecvError::Empty)
    }

    /// Drains up to `max` immediately available values into `out`,
    /// emptying the current shard before rotating — one engine batch
    /// acquisition per shard visited (the engine's `dequeue_batch`
    /// amortizes its per-operation fixed costs across the run of
    /// values). Returns how many values were taken.
    pub fn try_recv_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        self.tick();
        let n = self.handles.len();
        let mut taken = 0;
        for i in 0..n {
            let s = (self.cursor + i) % n;
            let got = self.handles[s].dequeue_batch(out, max - taken);
            // Freed `got` slots on shard `s`: admit as many parked
            // senders (one registry check per shard visited).
            self.chan.notify_tx(s, got);
            taken += got;
            if taken >= max {
                self.cursor = s;
                break;
            }
        }
        taken
    }

    /// Receives, parking the thread until a value or disconnect.
    pub fn recv(&mut self) -> Result<T, RecvError> {
        match self.recv_until(None) {
            Ok(v) => Ok(v),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError),
            Err(RecvTimeoutError::Timeout) => unreachable!("no deadline was set"),
        }
    }

    /// [`recv`](Receiver::recv) with an upper bound on the wait.
    /// Never returns [`Timeout`](RecvTimeoutError::Timeout) before the
    /// deadline has actually passed.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.recv_until(Some(Instant::now() + timeout))
    }

    /// [`recv_timeout`](Receiver::recv_timeout) against an absolute
    /// deadline, for callers pacing several waits off one clock read.
    pub fn recv_deadline(&mut self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        self.recv_until(Some(deadline))
    }

    fn recv_until(&mut self, deadline: Option<Instant>) -> Result<T, RecvTimeoutError> {
        loop {
            match self.try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
                Err(TryRecvError::Empty) => {}
            }
            inject!("chan.park");
            // Dekker publish: register (gauge up, SeqCst), then
            // re-check every shard. A sender either sees the gauge or
            // this re-check sees its value.
            let id = self.chan.register_waiter(WaiterKind::Thread(std::thread::current()));
            match self.try_recv() {
                Ok(v) => {
                    self.finish_wait(id);
                    return Ok(v);
                }
                Err(TryRecvError::Disconnected) => {
                    self.finish_wait(id);
                    return Err(RecvTimeoutError::Disconnected);
                }
                Err(TryRecvError::Empty) => {}
            }
            match deadline {
                None => std::thread::park(),
                Some(dl) => {
                    let now = Instant::now();
                    if now < dl {
                        std::thread::park_timeout(dl - now);
                    }
                }
            }
            // Whether woken, timed out, or spurious: withdraw, passing
            // on any token a notifier spent on us while we were out.
            self.finish_wait(id);
            if let Some(dl) = deadline {
                if Instant::now() >= dl {
                    return match self.try_recv() {
                        Ok(v) => Ok(v),
                        Err(TryRecvError::Disconnected) => Err(RecvTimeoutError::Disconnected),
                        Err(TryRecvError::Empty) => Err(RecvTimeoutError::Timeout),
                    };
                }
            }
        }
    }

    /// Withdraws registration `id`; if a notifier already popped it,
    /// the wake token it spent on us is passed to the next waiter so a
    /// token never dies with a receiver that did not need it.
    fn finish_wait(&mut self, id: u64) {
        if !self.chan.cancel_waiter(id) {
            self.chan.wake_one();
        }
    }

    /// Receives at least one and up to `max` values into `out`,
    /// parking until the first value or disconnect. Returns how many
    /// values were appended.
    pub fn recv_batch(&mut self, out: &mut Vec<T>, max: usize) -> Result<usize, RecvError> {
        assert!(max >= 1, "recv_batch needs room for at least one value");
        inject!("chan.batch");
        loop {
            let taken = self.try_recv_batch(out, max);
            if taken > 0 {
                return Ok(taken);
            }
            if self.chan.tx_closed() {
                // Post-latch re-sweep, as in try_recv.
                let taken = self.try_recv_batch(out, max);
                return if taken > 0 { Ok(taken) } else { Err(RecvError) };
            }
            inject!("chan.park");
            let id = self.chan.register_waiter(WaiterKind::Thread(std::thread::current()));
            let taken = self.try_recv_batch(out, max);
            if taken > 0 {
                self.finish_wait(id);
                return Ok(taken);
            }
            if self.chan.tx_closed() {
                self.finish_wait(id);
                let taken = self.try_recv_batch(out, max);
                return if taken > 0 { Ok(taken) } else { Err(RecvError) };
            }
            std::thread::park();
            self.finish_wait(id);
        }
    }

    /// Polls for a value, registering `cx`'s waker on `Pending`.
    /// `Ready(None)` means disconnected and drained. This is the
    /// primitive [`recv_async`](Receiver::recv_async) is built on; use
    /// it directly from manual `Future` impls.
    pub fn poll_recv(&mut self, cx: &mut Context<'_>) -> Poll<Option<T>> {
        // A previous Pending poll may have left a registration behind.
        // Re-arm it with the current waker; if a notifier already spent
        // a token on us, the re-check below consumes it (we are being
        // polled, which is exactly the re-check the token paid for).
        if let Some(id) = self.waiting.take() {
            if self.chan.rearm_waiter(id, cx.waker()) {
                self.waiting = Some(id);
            }
        }
        match self.try_recv() {
            Ok(v) => {
                self.drop_registration();
                return Poll::Ready(Some(v));
            }
            Err(TryRecvError::Disconnected) => {
                self.drop_registration();
                return Poll::Ready(None);
            }
            Err(TryRecvError::Empty) => {}
        }
        if self.waiting.is_none() {
            inject!("chan.park");
            let id = self.chan.register_waiter(WaiterKind::Task(cx.waker().clone()));
            // Dekker re-check with the registration published.
            match self.try_recv() {
                Ok(v) => {
                    self.waiting = None;
                    if !self.chan.cancel_waiter(id) {
                        self.chan.wake_one();
                    }
                    return Poll::Ready(Some(v));
                }
                Err(TryRecvError::Disconnected) => {
                    self.waiting = None;
                    if !self.chan.cancel_waiter(id) {
                        self.chan.wake_one();
                    }
                    return Poll::Ready(None);
                }
                Err(TryRecvError::Empty) => self.waiting = Some(id),
            }
        }
        Poll::Pending
    }

    /// Cleans up async state on a Ready return: withdraw any live
    /// registration, passing on a token that raced us to it.
    fn drop_registration(&mut self) {
        if let Some(id) = self.waiting.take() {
            if !self.chan.cancel_waiter(id) {
                self.chan.wake_one();
            }
        }
    }

    /// Receives asynchronously; resolves to `None` once the channel is
    /// disconnected and drained. Drops into any executor whose wakers
    /// follow the std contract — the tokio shim included.
    pub fn recv_async(&mut self) -> RecvFuture<'_, 'a, T, Q> {
        RecvFuture { rx: self }
    }
}

impl<T: Send, Q: ConcurrentQueue<T>> Drop for Receiver<'_, T, Q> {
    fn drop(&mut self) {
        if let Some(id) = self.waiting.take() {
            if !self.chan.cancel_waiter(id) {
                // A token was spent on a receiver that is going away:
                // hand it to the next waiter.
                self.chan.wake_one();
            }
        }
        self.chan.receiver_dropped();
    }
}

/// Future returned by [`Receiver::recv_async`].
pub struct RecvFuture<'r, 'a, T: Send, Q: ConcurrentQueue<T>> {
    rx: &'r mut Receiver<'a, T, Q>,
}

impl<T: Send, Q: ConcurrentQueue<T>> Future for RecvFuture<'_, '_, T, Q> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.get_mut().rx.poll_recv(cx)
    }
}
