//! The waiter registry: a FIFO of parked threads / pending task wakers
//! behind a Dekker-style `sleepers` gauge.
//!
//! One instance serves the channel's receivers (waiting for *values*);
//! one instance per shard serves its capacity-blocked senders (waiting
//! for *slots*). Both sides run the same protocol, spelled out in
//! DESIGN.md §15 and §16:
//!
//! - A waiter **registers** (pushing itself and bumping the gauge —
//!   the SeqCst Dekker store), **re-checks** its condition, and only
//!   then parks.
//! - A notifier makes the condition true (enqueue / dequeue at the
//!   engine's linearization point), then **loads the gauge** (SeqCst).
//!   The total order on the SeqCst gauge operations and the engine
//!   steps guarantees one of the two re-checks observes the other
//!   side, so no wakeup is lost.
//! - A popped-but-not-needed wake is a **token** that must be passed
//!   on ([`finish`](ParkRegistry::finish)), never dropped: the FIFO
//!   pop may have skipped the waiter the condition was meant for.
//!
//! The registry also keeps two relaxed statistics counters (`parks`,
//! `wakes`) surfaced through the channel's `HealthSnapshot` — an
//! operator watching parks grow much faster than wakes is watching
//! overload form in real time.

use kp_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::task::Waker;

/// A waiter parked on an OS thread or pending on a task waker.
pub(crate) enum WaiterKind {
    Thread(std::thread::Thread),
    Task(Waker),
}

impl WaiterKind {
    fn wake(self) {
        match self {
            WaiterKind::Thread(t) => t.unpark(),
            WaiterKind::Task(w) => w.wake(),
        }
    }
}

/// FIFO list guarded by the registry mutex; the `sleepers` gauge
/// mirrors its length.
struct WaiterList {
    slots: VecDeque<(u64, WaiterKind)>,
    next_id: u64,
}

/// One parking domain: gauge + FIFO + counters. See the module docs
/// for the protocol.
pub(crate) struct ParkRegistry {
    /// Dekker gauge: number of entries in `waiters`. Notifiers read it
    /// after their engine step to decide whether a wake is needed
    /// without taking the lock on the common path.
    sleepers: AtomicUsize,
    waiters: Mutex<WaiterList>,
    /// Total registrations (relaxed statistic).
    parks: AtomicU64,
    /// Total wake tokens spent — successful pops (relaxed statistic).
    wakes: AtomicU64,
}

impl ParkRegistry {
    pub(crate) fn new() -> Self {
        ParkRegistry {
            sleepers: AtomicUsize::new(0),
            waiters: Mutex::new(WaiterList { slots: VecDeque::new(), next_id: 0 }),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, WaiterList> {
        // The registry stays consistent through a panicking waiter (all
        // mutation is push/remove of plain entries), so poison is not
        // load-bearing here.
        self.waiters.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Publishes a waiter. The gauge increment is the Dekker store: it
    /// is SeqCst so it is globally ordered before the caller's
    /// subsequent condition re-check.
    pub(crate) fn register(&self, kind: WaiterKind) -> u64 {
        let mut w = self.lock();
        let id = w.next_id;
        w.next_id += 1;
        w.slots.push_back((id, kind));
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        self.parks.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Withdraws a registration. Returns `false` if a notifier already
    /// popped it — a wake token was spent on the caller, who must
    /// either consume it (by re-checking the condition) or pass it on
    /// via [`wake_one`](ParkRegistry::wake_one).
    pub(crate) fn cancel(&self, id: u64) -> bool {
        let mut w = self.lock();
        if let Some(pos) = w.slots.iter().position(|(i, _)| *i == id) {
            w.slots.remove(pos);
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Withdraws registration `id`, passing a token already spent on it
    /// to the next waiter so a token never dies with a waiter that did
    /// not need it. Every exit from a park — normal, timed out,
    /// spurious, or unwinding — must route through this.
    pub(crate) fn finish(&self, id: u64) {
        if !self.cancel(id) {
            self.wake_one();
        }
    }

    /// Re-arms an existing async registration with a fresh waker, so a
    /// task re-polled with a new context keeps exactly one slot.
    /// Returns `false` if the registration was already popped.
    pub(crate) fn rearm(&self, id: u64, waker: &Waker) -> bool {
        let mut w = self.lock();
        if let Some((_, kind)) = w.slots.iter_mut().find(|(i, _)| *i == id) {
            *kind = WaiterKind::Task(waker.clone());
            true
        } else {
            false
        }
    }

    /// Pops and wakes the oldest waiter, if any.
    pub(crate) fn wake_one(&self) -> bool {
        let popped = {
            let mut w = self.lock();
            let popped = w.slots.pop_front();
            if popped.is_some() {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
            }
            popped
        };
        match popped {
            // Wake outside the lock: a waker may run scheduler code.
            Some((_, kind)) => {
                self.wakes.fetch_add(1, Ordering::Relaxed);
                kind.wake();
                true
            }
            None => false,
        }
    }

    /// Notifier-side check after `n` condition-making steps: wakes up
    /// to `n` waiters (one re-check each suffices to consume the batch
    /// or prove it was consumed by others).
    pub(crate) fn notify_many(&self, n: usize) {
        if n == 0 {
            return;
        }
        let sleeping = self.sleepers.load(Ordering::SeqCst);
        for _ in 0..n.min(sleeping) {
            if !self.wake_one() {
                break;
            }
        }
    }

    /// Wakes every waiter (disconnect / state-change broadcast).
    pub(crate) fn wake_all(&self) {
        while self.wake_one() {}
    }

    /// Current gauge value (diagnostics).
    pub(crate) fn sleepers(&self) -> usize {
        self.sleepers.load(Ordering::SeqCst)
    }

    /// Total registrations so far.
    pub(crate) fn park_count(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Total wake tokens spent so far.
    pub(crate) fn wake_count(&self) -> u64 {
        self.wakes.load(Ordering::Relaxed)
    }
}

/// RAII wrapper for a live registration: unwinding out of the window
/// between register and park (a chaos kill inside an engine call, a
/// panicking waker) must not let a wake token die with the stack frame.
/// Dropping the guard without [`disarm`](WaitGuard::disarm) runs the
/// token pass-on rule.
pub(crate) struct WaitGuard<'r> {
    registry: &'r ParkRegistry,
    id: u64,
    armed: bool,
}

impl<'r> WaitGuard<'r> {
    pub(crate) fn new(registry: &'r ParkRegistry, kind: WaiterKind) -> Self {
        let id = registry.register(kind);
        WaitGuard { registry, id, armed: true }
    }

    /// Completes the wait normally: withdraw, passing on any token
    /// spent on us.
    pub(crate) fn finish(mut self) {
        self.armed = false;
        self.registry.finish(self.id);
    }
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.registry.finish(self.id);
        }
    }
}
