//! Channel error types, mirroring `std::sync::mpsc` naming so the API
//! reads familiarly.

use std::fmt;

/// Error returned by [`Sender::try_send`](crate::Sender::try_send).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The sender's shard is at capacity (bounded cores only; the
    /// value is handed back). Can be reported transiently while
    /// concurrent dequeuers hold slot indices mid-flight.
    Full(T),
    /// Every receiver has been dropped; the value is handed back.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// The value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error returned by [`Sender::send`](crate::Sender::send): every
/// receiver has been dropped. The unsent value is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::send_timeout`](crate::Sender::send_timeout)
/// and [`Sender::send_deadline`](crate::Sender::send_deadline). The
/// unsent value is handed back in both arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The deadline passed with the shard still refusing the value
    /// (at capacity, over its admission quota, or quarantined).
    Timeout(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

impl<T> SendTimeoutError<T> {
    /// The value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            SendTimeoutError::Timeout(v) | SendTimeoutError::Disconnected(v) => v,
        }
    }
}

impl<T> fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => write!(f, "timed out sending on a full channel"),
            SendTimeoutError::Disconnected(_) => {
                write!(f, "sending on a disconnected channel")
            }
        }
    }
}

impl<T: fmt::Debug> std::error::Error for SendTimeoutError<T> {}

/// Error returned by [`Receiver::try_recv`](crate::Receiver::try_recv).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No value was available (senders may still produce one).
    Empty,
    /// Every sender has been dropped and all shards are drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => write!(f, "receiving on a disconnected channel"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv`](crate::Receiver::recv): every
/// sender has been dropped and all shards are drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on a disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`](crate::Receiver::recv_timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with no value available.
    Timeout,
    /// Every sender has been dropped and all shards are drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out receiving on an empty channel"),
            RecvTimeoutError::Disconnected => write!(f, "receiving on a disconnected channel"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Channel::try_sender`](crate::Channel::try_sender)
/// and [`Channel::try_receiver`](crate::Channel::try_receiver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscribeError {
    /// The channel is closed on that side (the last sender/receiver
    /// already dropped and the disconnect latched).
    Closed,
    /// A shard's thread capacity is exhausted; raise
    /// [`ChannelConfig`](crate::ChannelConfig) limits.
    Capacity(queue_traits::RegistrationError),
}

impl fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscribeError::Closed => write!(f, "channel already closed"),
            SubscribeError::Capacity(e) => write!(f, "shard capacity exhausted: {e}"),
        }
    }
}

impl std::error::Error for SubscribeError {}
