//! The abstract shared state and the guarded atomic steps of the
//! operation scheme.

use std::collections::VecDeque;

/// What an operation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `enqueue(value)`.
    Enqueue(u64),
    /// `dequeue()`.
    Dequeue,
    /// `enqueue(value)` executed on the bounded lock-free fast path
    /// (DESIGN.md §12): no descriptor publish, the append CAS is the
    /// whole operation plus a best-effort tail swing. Demotion to the
    /// slow path is not modelled — a demoted op *is* an [`Enqueue`].
    FastEnqueue(u64),
    /// `dequeue()` executed on the fast path: no descriptor, the
    /// sentinel's `deqTid` CAS (with the `FAST_DEQUEUER` marker) is the
    /// linearization, then a best-effort head swing.
    FastDequeue,
}

/// A bounded configuration to explore: each inner vector is one
/// thread's program (operations executed in order).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Per-thread operation sequences.
    pub programs: Vec<Vec<OpKind>>,
    /// Threads that may die (DESIGN.md §13 sudden death: no
    /// destructors, no unwind recovery). The explorer branches on an
    /// `Abandon` step at *every* point of a mortal thread's execution,
    /// so every death position is covered.
    pub mortal: Vec<bool>,
    /// Whether the abandoned-handle reaper is modelled: `ReapClaim`
    /// steps adopt a dead thread's orphaned descriptor work, after
    /// which the orphan's remaining steps run as helper steps. With
    /// reaping off, an orphaned *published* operation never completes —
    /// the explorer reports that liveness loss as [`Stuck`].
    ///
    /// [`Stuck`]: crate::ModelError::Stuck
    pub reaping: bool,
}

impl Scenario {
    /// A scenario of immortal threads (the pre-§13 model).
    pub fn new(programs: Vec<Vec<OpKind>>) -> Self {
        let n = programs.len();
        Scenario {
            programs,
            mortal: vec![false; n],
            reaping: false,
        }
    }

    /// A scenario where the listed threads are mortal; `reaping`
    /// selects whether orphan adoption is modelled.
    pub fn with_mortal(programs: Vec<Vec<OpKind>>, mortal_threads: &[usize], reaping: bool) -> Self {
        let mut s = Scenario::new(programs);
        for &t in mortal_threads {
            s.mortal[t] = true;
        }
        s.reaping = reaping;
        s
    }
}

/// Control location of an in-flight operation. Steps correspond to the
/// paper's atomic transitions:
///
/// * enqueue: `Publish → Append (L74, linearizes) → Ack (L93) →
///   FixTail (L94) → Done`
/// * dequeue: `Publish → Stage0 (L131) → Lock (L135, linearizes) /
///   ObserveEmpty (L112+L120) → Ack (L149) → FixHead (L150) → Done`
/// * fast enqueue: `FastAppend (same CAS as L74, linearizes) →
///   FastFixTail → Done` — no publish, no ack (there is no descriptor)
/// * fast dequeue: `FastStage0 → FastLock (same CAS as L135,
///   linearizes) / FastEmpty → FastFixHead → Done` — the stage split
///   over-approximates the implementation's load-validate-CAS, which
///   only adds interleavings, never hides one
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Pc {
    Publish,
    /// Enqueue: waiting to append (needs `tail.next == null`).
    Append,
    /// Enqueue: appended, pending flag still set.
    AckEnq,
    /// Enqueue: acknowledged; tail still behind.
    FixTail,
    /// Dequeue: stage 0 — point descriptor at the current sentinel (or
    /// observe empty).
    Stage0,
    /// Dequeue: lock the sentinel recorded at stage 0.
    Lock,
    /// Dequeue: locked, pending flag still set.
    AckDeq,
    /// Dequeue: acknowledged; head still behind.
    FixHead,
    /// Fast enqueue: waiting to append (needs `tail.next == null`).
    FastAppend,
    /// Fast enqueue: appended; tail still behind (best-effort swing —
    /// in the implementation a helper's `FAST_ENQUEUER` branch may run
    /// it instead, with identical shared-state effect).
    FastFixTail,
    /// Fast dequeue: read head (or observe empty). No descriptor bind.
    FastStage0,
    /// Fast dequeue: CAS the read sentinel's `deqTid` to the
    /// `FAST_DEQUEUER` marker.
    FastLock,
    /// Fast dequeue: locked; head still behind (best-effort swing).
    FastFixHead,
    /// Operation complete (result recorded for dequeues).
    Done,
}

/// One node of the abstract linked list (arena-allocated; the model is
/// garbage collected by `Clone`, mirroring the paper's Java setting).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub(crate) value: Option<u64>,
    pub(crate) next: Option<usize>,
    /// Which (thread, op-index) locked this node for dequeue, if any.
    pub(crate) deq_by: Option<(usize, usize)>,
}

/// An in-flight or completed operation instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct OpState {
    pub(crate) kind: OpKind,
    pub(crate) pc: Pc,
    /// Enqueue: the node this op will append. Dequeue: the sentinel
    /// recorded at stage 0.
    pub(crate) node: Option<usize>,
    /// Dequeue result (`Some(None)` = observed empty).
    pub(crate) result: Option<Option<u64>>,
    /// Lemma instrumentation: how many times the linearization step ran.
    pub(crate) linearized_count: u8,
    /// The owning thread died before the op touched shared state: the
    /// op never happened (its value, if any, is lost with the thread,
    /// never duplicated). Terminal checks expect `linearized_count == 0`
    /// for these.
    pub(crate) vanished: bool,
}

/// The abstract shared state: list + per-thread programs + spec queue.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct State {
    pub(crate) nodes: Vec<Node>,
    pub(crate) head: usize,
    pub(crate) tail: usize,
    /// `ops[t]` = thread `t`'s operation instances (in program order).
    pub(crate) ops: Vec<Vec<OpState>>,
    /// Index of each thread's current operation (== len ⇒ thread done).
    pub(crate) cur: Vec<usize>,
    /// The sequential specification the linearization points drive.
    pub(crate) spec: VecDeque<u64>,
    /// Threads that have died (`Abandon` executed). Dead threads start
    /// no new operations; their in-flight descriptor work freezes until
    /// a `ReapClaim` adopts it.
    pub(crate) dead: Vec<bool>,
    /// Dead threads whose orphan has been adopted by the reaper.
    pub(crate) reaped: Vec<bool>,
    /// Copied from [`Scenario`]: which threads may die, and whether
    /// adoption is modelled (constant across a run; carried here so the
    /// step relation is a function of `State` alone).
    pub(crate) mortal: Vec<bool>,
    pub(crate) reaping: bool,
}

impl State {
    pub(crate) fn initial(scenario: &Scenario) -> Self {
        let ops = scenario
            .programs
            .iter()
            .map(|prog| {
                prog.iter()
                    .map(|&kind| OpState {
                        kind,
                        // Fast ops skip the descriptor publish entirely.
                        pc: match kind {
                            OpKind::Enqueue(_) | OpKind::Dequeue => Pc::Publish,
                            OpKind::FastEnqueue(_) => Pc::FastAppend,
                            OpKind::FastDequeue => Pc::FastStage0,
                        },
                        node: None,
                        result: None,
                        linearized_count: 0,
                        vanished: false,
                    })
                    .collect()
            })
            .collect();
        let n = scenario.programs.len();
        State {
            nodes: vec![Node {
                value: None,
                next: None,
                deq_by: None,
            }],
            head: 0,
            tail: 0,
            ops,
            cur: vec![0; n],
            spec: VecDeque::new(),
            dead: vec![false; n],
            reaped: vec![false; n],
            mortal: scenario.mortal.clone(),
            reaping: scenario.reaping,
        }
    }

    /// The node after `tail`, if any (the §3.1 *dangling* node).
    pub(crate) fn dangling(&self) -> Option<usize> {
        self.nodes[self.tail].next
    }

    /// True when every thread is settled: its program finished, or it
    /// died with nothing in flight (a dead thread's never-started
    /// operations are abandoned, not awaited). A dead thread whose
    /// orphan is still mid-protocol is *not* settled — with reaping on
    /// the adoption steps drive it to completion; with reaping off the
    /// orphan wedges and the explorer reports `Stuck`, which is exactly
    /// the liveness loss the reaper exists to prevent.
    pub(crate) fn terminal(&self) -> bool {
        self.cur.iter().zip(self.ops.iter()).enumerate().all(|(t, (&c, ops))| {
            c == ops.len()
                || (self.dead[t]
                    && matches!(
                        ops[c].pc,
                        Pc::Publish | Pc::FastAppend | Pc::FastStage0
                    ))
        })
    }

    /// The values currently in the abstract list, head to tail.
    pub(crate) fn list_values(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = self.nodes[self.head].next;
        while let Some(i) = cur {
            out.push(self.nodes[i].value.expect("non-sentinel carries a value"));
            cur = self.nodes[i].next;
        }
        out
    }
}
