//! An executable abstract model of the Kogan–Petrank operation scheme
//! (paper §3.1) with **exhaustive interleaving exploration**.
//!
//! The real implementation (`kp-queue`) is validated with real threads,
//! a linearizability checker, and stall injection — but real schedulers
//! only sample interleavings. This crate complements that testing by
//! model-checking the *protocol* itself: each operation is modelled as
//! the paper's sequence of guarded atomic steps, and a DFS with state
//! memoization visits **every** reachable interleaving of a bounded
//! configuration, checking on each path:
//!
//! * **Linearization soundness** — the paper's linearization points
//!   (the append CAS for enqueue, L74; the `deqTid` CAS for successful
//!   dequeue, L135; the empty observation, L112) are applied to an
//!   embedded sequential specification queue at the moment they
//!   execute; any divergence between an operation's observed result and
//!   the spec is reported with the offending schedule.
//! * **Structural invariants** — at most one dangling node (the §3.1
//!   lazy-enqueue invariant the whole scheme rests on), `head` reaches
//!   `tail`, a locked sentinel always has a successor.
//! * **Exactly-once (Lemmas 1–2)** — by construction each operation has
//!   one append/lock step, and the checker verifies the step's *guard*
//!   is never satisfiable twice (re-execution is a model bug).
//! * **Progress** — no reachable non-terminal state is stuck: some step
//!   is always enabled. In the scheme this is the operational shadow of
//!   lock-freedom; combined with the phase doorway (helpers cannot
//!   return while an older operation is pending, which the *code-level*
//!   tests cover) it yields the paper's wait-freedom argument.
//!
//! The model deliberately abstracts the helping *mechanics* (who
//! executes a step) because the shared-state evolution is identical
//! regardless of the executor — that is the entire point of the
//! three-step scheme. What the model cannot check (and the code-level
//! tests do) is the Rust implementation's memory management.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
mod state;

pub use explore::{explore, ExploreResult, ModelError, STEP_NAMES};
pub use state::{OpKind, Scenario};

#[cfg(test)]
mod tests;
