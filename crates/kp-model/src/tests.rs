//! Exhaustive-exploration tests of the operation scheme.

use crate::{explore, ModelError, OpKind, Scenario};
use OpKind::{Dequeue, Enqueue};

fn scenario(programs: &[&[OpKind]]) -> Scenario {
    Scenario {
        programs: programs.iter().map(|p| p.to_vec()).collect(),
    }
}

#[test]
fn single_thread_pairs() {
    let r = explore(&scenario(&[&[Enqueue(1), Dequeue, Dequeue]])).unwrap();
    assert!(r.states > 0);
    assert_eq!(r.terminals, 1, "deterministic single-thread execution");
}

#[test]
fn two_enqueuers_all_interleavings() {
    let r = explore(&scenario(&[
        &[Enqueue(1), Enqueue(2)],
        &[Enqueue(3), Enqueue(4)],
    ]))
    .unwrap();
    // Multiple insertion orders are reachable; all are spec-conformant.
    assert!(r.terminals >= 2, "interleavings produce distinct orders");
}

#[test]
fn two_dequeuers_share_the_elements() {
    let r = explore(&scenario(&[
        &[Enqueue(1), Enqueue(2), Dequeue],
        &[Dequeue],
    ]))
    .unwrap();
    assert!(r.states > 10);
}

#[test]
fn enqueuer_vs_dequeuer_empty_race() {
    // The §3.1 empty-queue race the stage-0 trick resolves: a dequeue
    // concurrent with the very first enqueue may observe empty or take
    // the element — never anything else.
    let r = explore(&scenario(&[&[Enqueue(7)], &[Dequeue]])).unwrap();
    assert!(r.terminals >= 2, "both outcomes must be reachable");
}

#[test]
fn three_threads_mixed() {
    let r = explore(&scenario(&[
        &[Enqueue(1), Dequeue],
        &[Enqueue(2)],
        &[Dequeue, Enqueue(3)],
    ]))
    .unwrap();
    assert!(r.states > 100, "nontrivial state space: {}", r.states);
}

#[test]
fn deeper_two_thread_program() {
    let r = explore(&scenario(&[
        &[Enqueue(1), Enqueue(2), Dequeue, Dequeue],
        &[Dequeue, Enqueue(3), Dequeue],
    ]))
    .unwrap();
    assert!(r.states > 500, "state space: {}", r.states);
}

/// Sanity of the checker itself: a corrupted transition relation (here
/// simulated by exploring a scenario, then asserting the checker's
/// error type renders) — the real negative coverage lives in
/// `explore.rs`'s guards; this test pins the error enum's shape.
#[test]
fn model_error_is_descriptive() {
    let e = ModelError::SpecDivergence {
        op: (1, 0),
        observed: Some(9),
        expected: Some(1),
        schedule: vec!["t0op0:Append".into()],
    };
    let s = format!("{e:?}");
    assert!(s.contains("SpecDivergence") && s.contains("t0op0"));
}

#[test]
fn fifo_order_is_forced_for_sequential_enqueues() {
    // One thread enqueues 1 then 2 (strictly ordered); a second thread
    // dequeues twice. In every terminal state where both dequeues got
    // values, they must be (1, 2) — never (2, 1). The exploration
    // would flag a SpecDivergence otherwise; reaching Ok is the proof.
    explore(&scenario(&[&[Enqueue(1), Enqueue(2)], &[Dequeue, Dequeue]])).unwrap();
}
