//! Exhaustive-exploration tests of the operation scheme.

use crate::{explore, ModelError, OpKind, Scenario};
use OpKind::{Dequeue, Enqueue, FastDequeue, FastEnqueue};

fn scenario(programs: &[&[OpKind]]) -> Scenario {
    Scenario {
        programs: programs.iter().map(|p| p.to_vec()).collect(),
    }
}

#[test]
fn single_thread_pairs() {
    let r = explore(&scenario(&[&[Enqueue(1), Dequeue, Dequeue]])).unwrap();
    assert!(r.states > 0);
    assert_eq!(r.terminals, 1, "deterministic single-thread execution");
}

#[test]
fn two_enqueuers_all_interleavings() {
    let r = explore(&scenario(&[
        &[Enqueue(1), Enqueue(2)],
        &[Enqueue(3), Enqueue(4)],
    ]))
    .unwrap();
    // Multiple insertion orders are reachable; all are spec-conformant.
    assert!(r.terminals >= 2, "interleavings produce distinct orders");
}

#[test]
fn two_dequeuers_share_the_elements() {
    let r = explore(&scenario(&[
        &[Enqueue(1), Enqueue(2), Dequeue],
        &[Dequeue],
    ]))
    .unwrap();
    assert!(r.states > 10);
}

#[test]
fn enqueuer_vs_dequeuer_empty_race() {
    // The §3.1 empty-queue race the stage-0 trick resolves: a dequeue
    // concurrent with the very first enqueue may observe empty or take
    // the element — never anything else.
    let r = explore(&scenario(&[&[Enqueue(7)], &[Dequeue]])).unwrap();
    assert!(r.terminals >= 2, "both outcomes must be reachable");
}

#[test]
fn three_threads_mixed() {
    let r = explore(&scenario(&[
        &[Enqueue(1), Dequeue],
        &[Enqueue(2)],
        &[Dequeue, Enqueue(3)],
    ]))
    .unwrap();
    assert!(r.states > 100, "nontrivial state space: {}", r.states);
}

#[test]
fn deeper_two_thread_program() {
    let r = explore(&scenario(&[
        &[Enqueue(1), Enqueue(2), Dequeue, Dequeue],
        &[Dequeue, Enqueue(3), Dequeue],
    ]))
    .unwrap();
    assert!(r.states > 500, "state space: {}", r.states);
}

/// Sanity of the checker itself: a corrupted transition relation (here
/// simulated by exploring a scenario, then asserting the checker's
/// error type renders) — the real negative coverage lives in
/// `explore.rs`'s guards; this test pins the error enum's shape.
#[test]
fn model_error_is_descriptive() {
    let e = ModelError::SpecDivergence {
        op: (1, 0),
        observed: Some(9),
        expected: Some(1),
        schedule: vec!["t0op0:Append".into()],
    };
    let s = format!("{e:?}");
    assert!(s.contains("SpecDivergence") && s.contains("t0op0"));
}

#[test]
fn fast_ops_alone_are_spec_conformant() {
    let r = explore(&scenario(&[
        &[FastEnqueue(1), FastDequeue],
        &[FastEnqueue(2), FastDequeue],
    ]))
    .unwrap();
    assert!(r.terminals >= 2, "racing fast ops reach distinct outcomes");
}

#[test]
fn fast_enqueue_races_slow_enqueue() {
    // The tentpole interleaving: a descriptor-driven enqueue (whose
    // append any helper may execute) racing a no-descriptor fast
    // enqueue on the same tail. Every schedule must linearize both
    // exactly once, in some order — the FAST_ENQUEUER branch in
    // help_finish_enq is what makes the helper side of this safe.
    let r = explore(&scenario(&[
        &[Enqueue(1), Dequeue, Dequeue],
        &[FastEnqueue(2)],
    ]))
    .unwrap();
    assert!(r.terminals >= 2, "both append orders reachable");
}

#[test]
fn fast_dequeue_races_slow_dequeue_over_one_element() {
    // A slow dequeue's stage-0/lock sequence vs a fast dequeue's
    // read/lock on a single-element queue: exactly one wins the value,
    // the other observes empty or the successor — never a duplicate,
    // never a lost value (exactly-once is checked at every terminal).
    explore(&scenario(&[
        &[Enqueue(1), Dequeue],
        &[FastDequeue],
    ]))
    .unwrap();
}

#[test]
fn fast_dequeue_respects_slow_lock() {
    // A slow dequeuer that has locked the sentinel but not yet swung
    // the head (between its Lock and FixHead) must block the fast
    // dequeuer's lock CAS — the fast path helps and retries instead of
    // double-taking.
    explore(&scenario(&[
        &[Enqueue(1), Enqueue(2), Dequeue],
        &[FastDequeue, FastDequeue],
    ]))
    .unwrap();
}

#[test]
fn mixed_fast_slow_empty_race() {
    // Empty-queue race with one fast and one slow dequeuer against the
    // first enqueue: empty observations must stay consistent with the
    // spec at their linearization instant.
    let r = explore(&scenario(&[
        &[FastEnqueue(7)],
        &[Dequeue],
        &[FastDequeue],
    ]))
    .unwrap();
    assert!(r.terminals >= 3, "win/lose/empty outcomes all reachable");
}

#[test]
fn fifo_order_forced_across_paths() {
    // Same-thread program order: a fast enqueue after a slow enqueue
    // must linearize after it (1 then 2), whichever path dequeues.
    explore(&scenario(&[
        &[Enqueue(1), FastEnqueue(2)],
        &[FastDequeue, Dequeue],
    ]))
    .unwrap();
}

#[test]
fn fifo_order_is_forced_for_sequential_enqueues() {
    // One thread enqueues 1 then 2 (strictly ordered); a second thread
    // dequeues twice. In every terminal state where both dequeues got
    // values, they must be (1, 2) — never (2, 1). The exploration
    // would flag a SpecDivergence otherwise; reaching Ok is the proof.
    explore(&scenario(&[&[Enqueue(1), Enqueue(2)], &[Dequeue, Dequeue]])).unwrap();
}
