//! Exhaustive-exploration tests of the operation scheme.

use crate::{explore, ModelError, OpKind, Scenario};
use OpKind::{Dequeue, Enqueue, FastDequeue, FastEnqueue};

fn scenario(programs: &[&[OpKind]]) -> Scenario {
    Scenario::new(programs.iter().map(|p| p.to_vec()).collect())
}

fn mortal_scenario(programs: &[&[OpKind]], mortal: &[usize], reaping: bool) -> Scenario {
    Scenario::with_mortal(
        programs.iter().map(|p| p.to_vec()).collect(),
        mortal,
        reaping,
    )
}

#[test]
fn single_thread_pairs() {
    let r = explore(&scenario(&[&[Enqueue(1), Dequeue, Dequeue]])).unwrap();
    assert!(r.states > 0);
    assert_eq!(r.terminals, 1, "deterministic single-thread execution");
}

#[test]
fn two_enqueuers_all_interleavings() {
    let r = explore(&scenario(&[
        &[Enqueue(1), Enqueue(2)],
        &[Enqueue(3), Enqueue(4)],
    ]))
    .unwrap();
    // Multiple insertion orders are reachable; all are spec-conformant.
    assert!(r.terminals >= 2, "interleavings produce distinct orders");
}

#[test]
fn two_dequeuers_share_the_elements() {
    let r = explore(&scenario(&[
        &[Enqueue(1), Enqueue(2), Dequeue],
        &[Dequeue],
    ]))
    .unwrap();
    assert!(r.states > 10);
}

#[test]
fn enqueuer_vs_dequeuer_empty_race() {
    // The §3.1 empty-queue race the stage-0 trick resolves: a dequeue
    // concurrent with the very first enqueue may observe empty or take
    // the element — never anything else.
    let r = explore(&scenario(&[&[Enqueue(7)], &[Dequeue]])).unwrap();
    assert!(r.terminals >= 2, "both outcomes must be reachable");
}

#[test]
fn three_threads_mixed() {
    let r = explore(&scenario(&[
        &[Enqueue(1), Dequeue],
        &[Enqueue(2)],
        &[Dequeue, Enqueue(3)],
    ]))
    .unwrap();
    assert!(r.states > 100, "nontrivial state space: {}", r.states);
}

#[test]
fn deeper_two_thread_program() {
    let r = explore(&scenario(&[
        &[Enqueue(1), Enqueue(2), Dequeue, Dequeue],
        &[Dequeue, Enqueue(3), Dequeue],
    ]))
    .unwrap();
    assert!(r.states > 500, "state space: {}", r.states);
}

/// Sanity of the checker itself: a corrupted transition relation (here
/// simulated by exploring a scenario, then asserting the checker's
/// error type renders) — the real negative coverage lives in
/// `explore.rs`'s guards; this test pins the error enum's shape.
#[test]
fn model_error_is_descriptive() {
    let e = ModelError::SpecDivergence {
        op: (1, 0),
        observed: Some(9),
        expected: Some(1),
        schedule: vec!["t0op0:Append".into()],
    };
    let s = format!("{e:?}");
    assert!(s.contains("SpecDivergence") && s.contains("t0op0"));
}

#[test]
fn fast_ops_alone_are_spec_conformant() {
    let r = explore(&scenario(&[
        &[FastEnqueue(1), FastDequeue],
        &[FastEnqueue(2), FastDequeue],
    ]))
    .unwrap();
    assert!(r.terminals >= 2, "racing fast ops reach distinct outcomes");
}

#[test]
fn fast_enqueue_races_slow_enqueue() {
    // The tentpole interleaving: a descriptor-driven enqueue (whose
    // append any helper may execute) racing a no-descriptor fast
    // enqueue on the same tail. Every schedule must linearize both
    // exactly once, in some order — the FAST_ENQUEUER branch in
    // help_finish_enq is what makes the helper side of this safe.
    let r = explore(&scenario(&[
        &[Enqueue(1), Dequeue, Dequeue],
        &[FastEnqueue(2)],
    ]))
    .unwrap();
    assert!(r.terminals >= 2, "both append orders reachable");
}

#[test]
fn fast_dequeue_races_slow_dequeue_over_one_element() {
    // A slow dequeue's stage-0/lock sequence vs a fast dequeue's
    // read/lock on a single-element queue: exactly one wins the value,
    // the other observes empty or the successor — never a duplicate,
    // never a lost value (exactly-once is checked at every terminal).
    explore(&scenario(&[
        &[Enqueue(1), Dequeue],
        &[FastDequeue],
    ]))
    .unwrap();
}

#[test]
fn fast_dequeue_respects_slow_lock() {
    // A slow dequeuer that has locked the sentinel but not yet swung
    // the head (between its Lock and FixHead) must block the fast
    // dequeuer's lock CAS — the fast path helps and retries instead of
    // double-taking.
    explore(&scenario(&[
        &[Enqueue(1), Enqueue(2), Dequeue],
        &[FastDequeue, FastDequeue],
    ]))
    .unwrap();
}

#[test]
fn mixed_fast_slow_empty_race() {
    // Empty-queue race with one fast and one slow dequeuer against the
    // first enqueue: empty observations must stay consistent with the
    // spec at their linearization instant.
    let r = explore(&scenario(&[
        &[FastEnqueue(7)],
        &[Dequeue],
        &[FastDequeue],
    ]))
    .unwrap();
    assert!(r.terminals >= 3, "win/lose/empty outcomes all reachable");
}

#[test]
fn fifo_order_forced_across_paths() {
    // Same-thread program order: a fast enqueue after a slow enqueue
    // must linearize after it (1 then 2), whichever path dequeues.
    explore(&scenario(&[
        &[Enqueue(1), FastEnqueue(2)],
        &[FastDequeue, Dequeue],
    ]))
    .unwrap();
}

#[test]
fn fifo_order_is_forced_for_sequential_enqueues() {
    // One thread enqueues 1 then 2 (strictly ordered); a second thread
    // dequeues twice. In every terminal state where both dequeues got
    // values, they must be (1, 2) — never (2, 1). The exploration
    // would flag a SpecDivergence otherwise; reaching Ok is the proof.
    explore(&scenario(&[&[Enqueue(1), Enqueue(2)], &[Dequeue, Dequeue]])).unwrap();
}

// -----------------------------------------------------------------
// mortal threads and the reaper (DESIGN.md §13)
// -----------------------------------------------------------------

#[test]
fn abandoned_enqueue_wedges_without_reaping() {
    // Thread 0 may die at any point of its enqueue. In the no-helping
    // worst case its published descriptor's append is driven by nobody,
    // so some death position leaves an orphan that never completes —
    // the explorer must find that liveness loss (Stuck).
    let r = explore(&mortal_scenario(
        &[&[Enqueue(1)], &[Enqueue(2), Dequeue, Dequeue]],
        &[0],
        false,
    ));
    assert!(
        matches!(r, Err(ModelError::Stuck { .. })),
        "an unadopted orphan must wedge: {r:?}"
    );
}

#[test]
fn abandoned_enqueue_is_adopted_with_reaping() {
    // Same scenario with the reaper on: every death position converges —
    // ReapClaim adopts the orphan, its append/ack/fix steps run as
    // helper steps, and every terminal state shows the orphan
    // linearized exactly once (or vanished, if it died unpublished).
    let r = explore(&mortal_scenario(
        &[&[Enqueue(1)], &[Enqueue(2), Dequeue, Dequeue]],
        &[0],
        true,
    ))
    .unwrap();
    assert!(r.terminals >= 2, "died/vanished/survived outcomes: {r:?}");
}

#[test]
fn abandoned_dequeue_is_adopted_with_reaping() {
    // Death anywhere inside a slow dequeue — including between its
    // sentinel lock and head swing. The lock's completion steps are
    // helper-runnable (help_finish_deq), the stage-0/lock steps need
    // adoption; either way the value is dequeued exactly once and the
    // concurrent dequeuer never double-takes it.
    explore(&mortal_scenario(
        &[&[Enqueue(1), Dequeue], &[Dequeue]],
        &[0],
        true,
    ))
    .unwrap();
}

#[test]
fn abandoned_dequeue_wedges_without_reaping() {
    let r = explore(&mortal_scenario(
        &[&[Enqueue(1), Dequeue], &[Dequeue]],
        &[0],
        false,
    ));
    assert!(
        matches!(r, Err(ModelError::Stuck { .. })),
        "an unadopted orphaned dequeue must wedge: {r:?}"
    );
}

#[test]
fn mortal_fast_ops_lose_only_their_own_value() {
    // Fast ops have no descriptor: death before the append/lock CAS
    // vanishes the op (value lost with the thread, never duplicated);
    // death after it leaves only help_finish work, which any thread
    // runs without adoption. Both variants must stay spec-conformant
    // at every death position.
    explore(&mortal_scenario(
        &[
            &[FastEnqueue(1), FastDequeue],
            &[FastEnqueue(2), FastDequeue],
        ],
        &[0],
        true,
    ))
    .unwrap();
}

#[test]
fn two_mortal_threads_with_reaping_converge() {
    // Even with every thread mortal, all death combinations converge
    // under reaping (the model's reaper is the system, not a thread —
    // matching the implementation, where any live handle or a future
    // `register` can finish a stranded reap via takeover).
    explore(&mortal_scenario(
        &[&[Enqueue(1), Dequeue], &[FastEnqueue(2), FastDequeue]],
        &[0, 1],
        true,
    ))
    .unwrap();
}
