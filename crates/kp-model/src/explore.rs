//! Exhaustive DFS over all interleavings of the scheme's atomic steps.

use std::collections::HashSet;

use crate::state::{OpKind, Pc, Scenario, State};

/// A model-level bug, reported with the schedule that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A linearization step executed twice for one operation
    /// (Lemma 1/2 violation).
    DoubleLinearization {
        /// `(thread, op_index)` of the offending operation.
        op: (usize, usize),
        /// The schedule (step labels) reaching the bug.
        schedule: Vec<String>,
    },
    /// A dequeue's observed value diverged from the sequential spec at
    /// its linearization point.
    SpecDivergence {
        /// `(thread, op_index)`.
        op: (usize, usize),
        /// What the operation observed.
        observed: Option<u64>,
        /// What the specification required.
        expected: Option<u64>,
        /// The schedule reaching the bug.
        schedule: Vec<String>,
    },
    /// The abstract list and the spec queue disagree (structure bug).
    StructureDivergence {
        /// Effective list contents.
        list: Vec<u64>,
        /// Spec contents.
        spec: Vec<u64>,
        /// The schedule reaching the bug.
        schedule: Vec<String>,
    },
    /// A reachable non-terminal state has no enabled step.
    Stuck {
        /// The schedule reaching the stuck state.
        schedule: Vec<String>,
    },
}

/// Statistics from a successful exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreResult {
    /// Distinct states visited.
    pub states: usize,
    /// Distinct terminal states reached.
    pub terminals: usize,
}

/// A step of some operation, identified for enumeration.
#[derive(Debug, Clone, Copy)]
struct Step {
    thread: usize,
    op: usize,
    kind: StepKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepKind {
    Publish,
    Append,
    AckEnq,
    FixTail,
    Stage0Empty,
    Stage0NonEmpty,
    Restage,
    Lock,
    AckDeq,
    FixHead,
    FastAppend,
    FastFixTail,
    FastEmpty,
    FastStage0,
    FastRestage,
    FastLock,
    FastFixHead,
    /// A mortal thread dies (DESIGN.md §13 sudden death): enabled at
    /// every point of its execution, so the explorer covers all death
    /// positions. An op that has touched no shared state vanishes with
    /// the thread; published descriptor work freezes until adopted.
    Abandon,
    /// The reaper adopts a dead thread's orphaned descriptor work
    /// (`reap_slot`'s help-then-retire sequence, collapsed to its
    /// enabling effect): the orphan's remaining steps become ordinary
    /// helper steps and must drive it to completion exactly once.
    ReapClaim,
}

/// The names of every step the explorer enumerates, in `StepKind`
/// declaration order. This is the model-side vocabulary the
/// `ATOMICS.toml` manifest's `model_steps` fields must draw from — the
/// atomics-audit cross-reference test ties each `linearization`-tagged
/// call site in the implementation to one of these steps, so the two
/// artifacts cannot drift apart silently.
pub const STEP_NAMES: &[&str] = &[
    "Publish",
    "Append",
    "AckEnq",
    "FixTail",
    "Stage0Empty",
    "Stage0NonEmpty",
    "Restage",
    "Lock",
    "AckDeq",
    "FixHead",
    "FastAppend",
    "FastFixTail",
    "FastEmpty",
    "FastStage0",
    "FastRestage",
    "FastLock",
    "FastFixHead",
    "Abandon",
    "ReapClaim",
];

impl Step {
    fn label(&self) -> String {
        format!("t{}op{}:{:?}", self.thread, self.op, self.kind)
    }
}

/// Explores every interleaving of `scenario`; returns statistics or the
/// first model error found.
pub fn explore(scenario: &Scenario) -> Result<ExploreResult, ModelError> {
    let mut memo: HashSet<State> = HashSet::new();
    let mut terminals: HashSet<State> = HashSet::new();
    let mut schedule: Vec<String> = Vec::new();
    let init = State::initial(scenario);
    dfs(&init, &mut memo, &mut terminals, &mut schedule)?;
    Ok(ExploreResult {
        states: memo.len(),
        terminals: terminals.len(),
    })
}

fn dfs(
    s: &State,
    memo: &mut HashSet<State>,
    terminals: &mut HashSet<State>,
    schedule: &mut Vec<String>,
) -> Result<(), ModelError> {
    if !memo.insert(s.clone()) {
        return Ok(());
    }
    check_structure(s, schedule)?;
    if s.terminal() {
        check_terminal(s, schedule)?;
        terminals.insert(s.clone());
        return Ok(());
    }
    let steps = enabled_steps(s);
    if steps.is_empty() {
        return Err(ModelError::Stuck {
            schedule: schedule.clone(),
        });
    }
    for step in steps {
        let next = apply(s, step, schedule)?;
        schedule.push(step.label());
        dfs(&next, memo, terminals, schedule)?;
        schedule.pop();
    }
    Ok(())
}

/// The *effective* list: the shared list minus a head sentinel whose
/// dequeue already linearized (spec popped at Lock; head swings later).
fn effective_list(s: &State) -> Vec<u64> {
    let mut vals = s.list_values();
    if s.nodes[s.head].deq_by.is_some() && !vals.is_empty() {
        vals.remove(0);
    }
    vals
}

fn check_structure(s: &State, schedule: &[String]) -> Result<(), ModelError> {
    let list = effective_list(s);
    let spec: Vec<u64> = s.spec.iter().copied().collect();
    if list != spec {
        return Err(ModelError::StructureDivergence {
            list,
            spec,
            schedule: schedule.to_vec(),
        });
    }
    Ok(())
}

fn check_terminal(s: &State, schedule: &[String]) -> Result<(), ModelError> {
    for (t, ops) in s.ops.iter().enumerate() {
        for (k, op) in ops.iter().enumerate() {
            if op.vanished {
                // Died before touching shared state: the op never
                // happened — any linearization of it is a double-apply.
                if op.linearized_count != 0 {
                    return Err(ModelError::DoubleLinearization {
                        op: (t, k),
                        schedule: schedule.to_vec(),
                    });
                }
                continue;
            }
            if op.pc != Pc::Done {
                // Only a dead thread leaves work unfinished at a
                // terminal state, and only ops it never started —
                // in-flight orphans keep the state non-terminal until
                // adoption completes them (or wedge into Stuck).
                debug_assert!(s.dead[t]);
                continue;
            }
            if op.linearized_count != 1 {
                return Err(ModelError::DoubleLinearization {
                    op: (t, k),
                    schedule: schedule.to_vec(),
                });
            }
            if matches!(op.kind, OpKind::Dequeue | OpKind::FastDequeue) && op.result.is_none() {
                return Err(ModelError::SpecDivergence {
                    op: (t, k),
                    observed: None,
                    expected: None,
                    schedule: schedule.to_vec(),
                });
            }
        }
    }
    Ok(())
}

fn enabled_steps(s: &State) -> Vec<Step> {
    let mut out = Vec::new();
    for (t, &cur) in s.cur.iter().enumerate() {
        if cur >= s.ops[t].len() {
            continue;
        }
        let op = &s.ops[t][cur];
        let mk = |kind| Step {
            thread: t,
            op: cur,
            kind,
        };
        // A mortal thread may die at any point; the explorer branches
        // on every death position.
        if s.mortal[t] && !s.dead[t] {
            out.push(mk(StepKind::Abandon));
        }
        if s.dead[t] {
            if matches!(op.pc, Pc::Publish | Pc::FastAppend | Pc::FastStage0) {
                // A dead thread starts nothing new (these are the
                // initial pcs of ops that never touched shared state;
                // an op *abandoned* at one of them vanished instead).
                continue;
            }
            if matches!(op.pc, Pc::Append | Pc::Stage0 | Pc::Lock) && !s.reaped[t] {
                // Orphaned descriptor-driven stages (help_enq's append,
                // help_deq's stage 0 / sentinel lock) wait for the
                // reaper's adoption — in the no-helping worst case
                // nobody else drives a peer's descriptor. The remaining
                // pcs are help_finish_* work any thread runs
                // unconditionally, so they stay enabled below.
                if s.reaping {
                    out.push(mk(StepKind::ReapClaim));
                }
                continue;
            }
        }
        match (op.kind, op.pc) {
            (_, Pc::Publish) => out.push(mk(StepKind::Publish)),
            (OpKind::Enqueue(_), Pc::Append) => {
                // §3.1 lazy-enqueue invariant: append only at a settled
                // tail (no dangling node).
                if s.dangling().is_none() {
                    out.push(mk(StepKind::Append));
                }
            }
            (OpKind::Enqueue(_), Pc::AckEnq) => out.push(mk(StepKind::AckEnq)),
            (OpKind::Enqueue(_), Pc::FixTail) => out.push(mk(StepKind::FixTail)),
            (OpKind::Dequeue, Pc::Stage0) => {
                if s.head == s.tail {
                    if s.nodes[s.tail].next.is_none() {
                        out.push(mk(StepKind::Stage0Empty));
                    }
                    // else: an enqueue is mid-flight (dangling node);
                    // the dequeue must wait for its FixTail — the
                    // paper's "help it first, then retry" (L122–123).
                } else {
                    out.push(mk(StepKind::Stage0NonEmpty));
                }
            }
            (OpKind::Dequeue, Pc::Lock) => {
                let staged = op.node.expect("stage 0 recorded a sentinel");
                if s.head != staged {
                    // Head moved since stage 0: restage (L129–132 loop).
                    out.push(mk(StepKind::Restage));
                } else if s.nodes[staged].deq_by.is_none() {
                    out.push(mk(StepKind::Lock));
                }
                // else: sentinel locked by another op; its Ack/FixHead
                // are enabled instead — progress is global.
            }
            (OpKind::Dequeue, Pc::AckDeq) => out.push(mk(StepKind::AckDeq)),
            (OpKind::Dequeue, Pc::FixHead) => out.push(mk(StepKind::FixHead)),
            (OpKind::FastEnqueue(_), Pc::FastAppend) => {
                // Same append CAS as the slow path's L74, hence the same
                // §3.1 guard: only at a settled tail. With a dangling
                // node the implementation's fast loop helps FixTail and
                // retries — modelled by the dangling op's own FixTail
                // step being the enabled one (global progress).
                if s.dangling().is_none() {
                    out.push(mk(StepKind::FastAppend));
                }
            }
            (OpKind::FastEnqueue(_), Pc::FastFixTail) => out.push(mk(StepKind::FastFixTail)),
            (OpKind::FastDequeue, Pc::FastStage0) => {
                if s.head == s.tail {
                    if s.nodes[s.tail].next.is_none() {
                        out.push(mk(StepKind::FastEmpty));
                    }
                    // else: dangling node — wait for its FixTail, as in
                    // the slow stage 0 (the fast loop helps and retries).
                } else {
                    out.push(mk(StepKind::FastStage0));
                }
            }
            (OpKind::FastDequeue, Pc::FastLock) => {
                let staged = op.node.expect("fast stage 0 read a sentinel");
                if s.head != staged {
                    // Head moved between the read and the CAS: the CAS
                    // would fail (nodes behind head are always locked),
                    // and the fast loop retries from a fresh head read.
                    out.push(mk(StepKind::FastRestage));
                } else if s.nodes[staged].deq_by.is_none() {
                    out.push(mk(StepKind::FastLock));
                }
                // else: locked by a concurrent (fast or slow) dequeue;
                // that op's completion steps are enabled instead.
            }
            (OpKind::FastDequeue, Pc::FastFixHead) => out.push(mk(StepKind::FastFixHead)),
            (_, Pc::Done) => unreachable!("cur advances when an op completes"),
            _ => unreachable!("kind/pc mismatch"),
        }
    }
    out
}

fn apply(s: &State, step: Step, schedule: &[String]) -> Result<State, ModelError> {
    let mut n = s.clone();
    let t = step.thread;
    let k = step.op;
    // Split borrows: mutate the op through an index each time.
    macro_rules! op {
        () => {
            n.ops[t][k]
        };
    }
    match step.kind {
        StepKind::Publish => {
            op!().pc = match op!().kind {
                OpKind::Enqueue(_) => Pc::Append,
                OpKind::Dequeue => Pc::Stage0,
                OpKind::FastEnqueue(_) | OpKind::FastDequeue => {
                    unreachable!("fast ops have no publish step")
                }
            };
        }
        StepKind::Append => {
            let OpKind::Enqueue(v) = op!().kind else {
                unreachable!()
            };
            let idx = n.nodes.len();
            n.nodes.push(crate::state::Node {
                value: Some(v),
                next: None,
                deq_by: None,
            });
            debug_assert!(n.nodes[n.tail].next.is_none());
            let tail = n.tail;
            n.nodes[tail].next = Some(idx);
            op!().node = Some(idx);
            // Linearization of the enqueue.
            n.spec.push_back(v);
            op!().linearized_count += 1;
            if op!().linearized_count > 1 {
                return Err(ModelError::DoubleLinearization {
                    op: (t, k),
                    schedule: schedule.to_vec(),
                });
            }
            op!().pc = Pc::AckEnq;
        }
        StepKind::AckEnq => {
            op!().pc = Pc::FixTail;
        }
        StepKind::FixTail => {
            let next = n.nodes[n.tail].next.expect("our appended node");
            debug_assert_eq!(Some(next), op!().node);
            n.tail = next;
            op!().pc = Pc::Done;
            n.cur[t] += 1;
        }
        StepKind::Stage0Empty => {
            // Linearized as an empty dequeue (L112 read + L120 CAS).
            let expected = n.spec.front().copied();
            if expected.is_some() {
                return Err(ModelError::SpecDivergence {
                    op: (t, k),
                    observed: None,
                    expected,
                    schedule: schedule.to_vec(),
                });
            }
            op!().result = Some(None);
            op!().linearized_count += 1;
            op!().pc = Pc::Done;
            n.cur[t] += 1;
        }
        StepKind::Stage0NonEmpty => {
            op!().node = Some(n.head);
            op!().pc = Pc::Lock;
        }
        StepKind::Restage => {
            op!().node = None;
            op!().pc = Pc::Stage0;
        }
        StepKind::Lock => {
            let sentinel = op!().node.expect("staged");
            debug_assert_eq!(sentinel, n.head);
            debug_assert!(n.nodes[sentinel].deq_by.is_none());
            n.nodes[sentinel].deq_by = Some((t, k));
            let first = n.nodes[sentinel].next.expect("non-empty branch");
            let observed = n.nodes[first].value;
            // Linearization of the successful dequeue.
            let expected = n.spec.pop_front();
            if observed != expected {
                return Err(ModelError::SpecDivergence {
                    op: (t, k),
                    observed,
                    expected,
                    schedule: schedule.to_vec(),
                });
            }
            op!().result = Some(observed);
            op!().linearized_count += 1;
            if op!().linearized_count > 1 {
                return Err(ModelError::DoubleLinearization {
                    op: (t, k),
                    schedule: schedule.to_vec(),
                });
            }
            op!().pc = Pc::AckDeq;
        }
        StepKind::AckDeq => {
            op!().pc = Pc::FixHead;
        }
        StepKind::FixHead => {
            let sentinel = op!().node.expect("locked");
            debug_assert_eq!(sentinel, n.head);
            n.head = n.nodes[sentinel].next.expect("locked sentinel has next");
            op!().pc = Pc::Done;
            n.cur[t] += 1;
        }
        StepKind::FastAppend => {
            // Identical shared-state effect to Append (same CAS); the
            // fast op just has no descriptor to acknowledge afterwards.
            let OpKind::FastEnqueue(v) = op!().kind else {
                unreachable!()
            };
            let idx = n.nodes.len();
            n.nodes.push(crate::state::Node {
                value: Some(v),
                next: None,
                deq_by: None,
            });
            debug_assert!(n.nodes[n.tail].next.is_none());
            let tail = n.tail;
            n.nodes[tail].next = Some(idx);
            op!().node = Some(idx);
            // Linearization of the fast enqueue.
            n.spec.push_back(v);
            op!().linearized_count += 1;
            if op!().linearized_count > 1 {
                return Err(ModelError::DoubleLinearization {
                    op: (t, k),
                    schedule: schedule.to_vec(),
                });
            }
            op!().pc = Pc::FastFixTail;
        }
        StepKind::FastFixTail => {
            let next = n.nodes[n.tail].next.expect("our appended node");
            debug_assert_eq!(Some(next), op!().node);
            n.tail = next;
            op!().pc = Pc::Done;
            n.cur[t] += 1;
        }
        StepKind::FastEmpty => {
            // Linearized as an empty dequeue at the validated `next`
            // load (no descriptor CAS needed on the fast path).
            let expected = n.spec.front().copied();
            if expected.is_some() {
                return Err(ModelError::SpecDivergence {
                    op: (t, k),
                    observed: None,
                    expected,
                    schedule: schedule.to_vec(),
                });
            }
            op!().result = Some(None);
            op!().linearized_count += 1;
            op!().pc = Pc::Done;
            n.cur[t] += 1;
        }
        StepKind::FastStage0 => {
            op!().node = Some(n.head);
            op!().pc = Pc::FastLock;
        }
        StepKind::FastRestage => {
            op!().node = None;
            op!().pc = Pc::FastStage0;
        }
        StepKind::FastLock => {
            // Identical to Lock (same `deqTid` CAS, marker value aside).
            let sentinel = op!().node.expect("staged");
            debug_assert_eq!(sentinel, n.head);
            debug_assert!(n.nodes[sentinel].deq_by.is_none());
            n.nodes[sentinel].deq_by = Some((t, k));
            let first = n.nodes[sentinel].next.expect("non-empty branch");
            let observed = n.nodes[first].value;
            // Linearization of the successful fast dequeue.
            let expected = n.spec.pop_front();
            if observed != expected {
                return Err(ModelError::SpecDivergence {
                    op: (t, k),
                    observed,
                    expected,
                    schedule: schedule.to_vec(),
                });
            }
            op!().result = Some(observed);
            op!().linearized_count += 1;
            if op!().linearized_count > 1 {
                return Err(ModelError::DoubleLinearization {
                    op: (t, k),
                    schedule: schedule.to_vec(),
                });
            }
            op!().pc = Pc::FastFixHead;
        }
        StepKind::FastFixHead => {
            let sentinel = op!().node.expect("locked");
            debug_assert_eq!(sentinel, n.head);
            n.head = n.nodes[sentinel].next.expect("locked sentinel has next");
            op!().pc = Pc::Done;
            n.cur[t] += 1;
        }
        StepKind::Abandon => {
            n.dead[t] = true;
            match op!().pc {
                // Nothing shared yet (descriptor unpublished / node
                // private / lock CAS not executed): the op vanishes
                // with the thread. Its value, if any, is lost — the
                // bounded per-death loss the torture suite budgets as
                // `allowed_missing` — and the spec never saw it.
                Pc::Publish | Pc::FastAppend | Pc::FastStage0 | Pc::FastLock => {
                    op!().vanished = true;
                    op!().pc = Pc::Done;
                    n.cur[t] += 1;
                }
                // Published / mid-protocol: the orphan freezes where it
                // is. enabled_steps decides what may still run (the
                // help_finish_* pcs immediately, descriptor stages only
                // after ReapClaim).
                _ => {}
            }
        }
        StepKind::ReapClaim => {
            debug_assert!(n.dead[t] && !n.reaped[t]);
            n.reaped[t] = true;
        }
    }
    Ok(n)
}

#[cfg(test)]
mod step_names_tests {
    use super::{StepKind, STEP_NAMES};

    #[test]
    fn step_names_match_the_enum() {
        // Exhaustive: listing every variant here means adding a variant
        // without extending STEP_NAMES fails to compile.
        let all = [
            StepKind::Publish,
            StepKind::Append,
            StepKind::AckEnq,
            StepKind::FixTail,
            StepKind::Stage0Empty,
            StepKind::Stage0NonEmpty,
            StepKind::Restage,
            StepKind::Lock,
            StepKind::AckDeq,
            StepKind::FixHead,
            StepKind::FastAppend,
            StepKind::FastFixTail,
            StepKind::FastEmpty,
            StepKind::FastStage0,
            StepKind::FastRestage,
            StepKind::FastLock,
            StepKind::FastFixHead,
            StepKind::Abandon,
            StepKind::ReapClaim,
        ];
        assert_eq!(all.len(), STEP_NAMES.len());
        for (kind, name) in all.iter().zip(STEP_NAMES) {
            assert_eq!(format!("{kind:?}"), *name);
        }
    }
}
