//! Umbrella crate for the reproduction of Kogan & Petrank, *Wait-Free
//! Queues With Multiple Enqueuers and Dequeuers* (PPoPP 2011).
//!
//! Re-exports the workspace's public surface so examples and downstream
//! users can depend on a single crate:
//!
//! * [`kp_queue`] — the paper's wait-free MPMC queue (base + optimized).
//! * [`ms_queue`] — the Michael–Scott lock-free baseline and context
//!   baselines (mutex queue, Lamport SPSC).
//! * [`hazard`] — hazard-pointer reclamation (paper §3.4).
//! * [`idpool`] — wait-free long-lived renaming for dynamic thread IDs
//!   (paper §3.3).
//! * [`linearize`] — linearizability checker used by the test suite.
//! * [`kp_model`] — exhaustive-interleaving model of the operation
//!   scheme (machine-checks the §5 lemmas on bounded configurations).
//! * [`harness`] — workload generators and the figure-reproduction
//!   drivers.
//! * [`kp_channel`] — the sharded, batching channel front-end with
//!   blocking/async receive (DESIGN.md §15).
//! * [`wcq`] — the bounded wCQ ring-buffer engine (DESIGN.md §14), the
//!   channel's fixed-capacity shard core.

pub use harness;
pub use hazard;
pub use idpool;
pub use kp_channel;
pub use kp_model;
pub use kp_queue;
pub use linearize;
pub use ms_queue;
pub use wcq;

/// The queue traits shared by every implementation.
pub mod traits {
    pub use kp_queue::{ConcurrentQueue, QueueHandle};
}
