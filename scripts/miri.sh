#!/usr/bin/env bash
# Runs the core single-/few-thread test suites under Miri, which checks
# the unsafe code (raw node pointers, UnsafeCell payloads, hazard slots)
# against Rust's aliasing and initialization rules and catches some
# memory-ordering bugs via its weak-memory emulation.
#
# Best-effort by design: Miri is a nightly rustup component that this
# container cannot always install (no network). When the component is
# missing the script *skips with exit 0* and says so clearly — CI treats
# a skip as success, a real Miri failure as red.
#
# Scope: kp-queue, hazard, idpool unit tests. The long stress tests are
# excluded via the filters below — Miri runs them ~100x slower than
# native and the sanitizer stage covers the concurrency angle natively.
set -uo pipefail
cd "$(dirname "$0")/.."

skip() {
    echo "miri: SKIPPED — $1"
    echo "miri: (install with: rustup toolchain install nightly && rustup +nightly component add miri)"
    exit 0
}

command -v rustup >/dev/null 2>&1 || skip "rustup not available"
rustup toolchain list 2>/dev/null | grep -q nightly || skip "no nightly toolchain installed"
rustup component list --toolchain nightly 2>/dev/null | grep -q "^miri.*(installed)" \
    || skip "nightly toolchain has no miri component"

echo "miri: running core suites (this is slow)"
# Isolation stays on (the default) — the shims are deterministic and the
# filtered tests do no real I/O. Skip the known stress/timing tests.
MIRIFLAGS="${MIRIFLAGS:-}" cargo +nightly miri test -p kp-queue -p hazard -p idpool -- \
    --skip stress --skip torture --skip contention --skip concurrent
status=$?
if [ $status -ne 0 ]; then
    echo "miri: FAILED" >&2
    exit $status
fi
echo "miri: ok"
