#!/usr/bin/env bash
# Chaos torture sweep: runs the fault-injection test suite and the
# seed-matrix torture driver (deterministic crash/stall plans against
# both queue variants), then proves the chaos feature is zero-cost when
# disabled. Exits non-zero on any lost value, unreclaimable slot,
# unplanned death, or wait-freedom watchdog violation. Scale knobs:
#   SEEDS    comma-separated seed matrix (default: the fixed CI matrix)
#   THREADS  threads per torture round          (default: 4)
#   OPS      enqueues per producer per round    (default: 20000)
#   STALLS   seeded stall rules per plan        (default: 12)
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-1,7,42,1337,24181}"
THREADS="${THREADS:-4}"
OPS="${OPS:-20000}"
STALLS="${STALLS:-12}"

echo "=== chaos test suite (workspace, --features chaos) ==="
cargo test --features chaos --release -q

echo "=== seed-matrix torture driver (seeds: $SEEDS) ==="
cargo run --release --features chaos -p harness --bin torture -- \
  --seeds "$SEEDS" --threads "$THREADS" --ops "$OPS" --stalls "$STALLS"

echo "=== zero-cost check: default build must not link chaos ==="
if cargo tree -p kp-queue --edges normal | grep -q '^.*\bchaos\b'; then
  echo "FAIL: kp-queue depends on chaos without the feature" >&2
  exit 1
fi
if cargo tree -p hazard --edges normal | grep -q '\bchaos\b' ||
   cargo tree -p idpool --edges normal | grep -q '\bchaos\b'; then
  echo "FAIL: hazard/idpool depend on chaos without the feature" >&2
  exit 1
fi
echo "ok: chaos absent from default dependency graph"

echo "torture.sh: all checks passed"
