#!/usr/bin/env bash
# Runs the concurrent test suites under ThreadSanitizer, which observes
# the *actual* memory orderings the hardware executes — the dynamic
# complement to the static ATOMICS.toml audit: the audit proves every
# ordering is claimed and justified; TSan catches a justification that
# is wrong at runtime (a data race the Acquire/Release pairing fails to
# close).
#
# Best-effort by design: -Zsanitizer=thread needs a nightly toolchain
# with the rust-src component (to -Zbuild-std with sanitized std). When
# either is missing the script *skips with exit 0* and says so clearly.
set -uo pipefail
cd "$(dirname "$0")/.."

skip() {
    echo "tsan: SKIPPED — $1"
    echo "tsan: (install with: rustup toolchain install nightly && rustup +nightly component add rust-src)"
    exit 0
}

command -v rustup >/dev/null 2>&1 || skip "rustup not available"
rustup toolchain list 2>/dev/null | grep -q nightly || skip "no nightly toolchain installed"
rustup component list --toolchain nightly 2>/dev/null | grep -q "^rust-src.*(installed)" \
    || skip "nightly toolchain has no rust-src component (needed for -Zbuild-std)"

host="$(rustc -vV | sed -n 's/^host: //p')"
case "$host" in
    x86_64-*-linux-gnu|aarch64-*-linux-gnu|*-apple-darwin) ;;
    *) skip "ThreadSanitizer unsupported on host target $host" ;;
esac

echo "tsan: running concurrent suites on $host"
# TSan intercepts at the std::sync::atomic layer, which the kp-sync
# facade re-exports unchanged, so no special build of the facade is
# needed. Suppress the epoch-shim's intentional benign races if any
# surface as noise via TSAN_OPTIONS externally.
RUSTFLAGS="-Zsanitizer=thread ${RUSTFLAGS:-}" \
RUSTDOCFLAGS="-Zsanitizer=thread" \
cargo +nightly test -Zbuild-std --target "$host" -p kp-queue -p hazard -p idpool
status=$?
if [ $status -ne 0 ]; then
    echo "tsan: FAILED" >&2
    exit $status
fi
echo "tsan: ok"
