#!/usr/bin/env bash
# Regenerates every figure of the paper's evaluation section plus the
# latency extension experiment. Results land in results/ (CSV) and
# results/logs/ (full console output). Scale knobs:
#   ITERS  iterations per thread per run   (paper: 1000000)
#   REPS   repetitions per data point      (paper: 10)
#   MAXT   largest thread count            (paper: 16)
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS="${ITERS:-20000}"
REPS="${REPS:-3}"
MAXT="${MAXT:-16}"
OUT="${OUT:-results}"
mkdir -p "$OUT/logs"

cargo build --release -p harness --bins

run() {
  local name="$1"; shift
  echo "=== $name ==="
  ./target/release/"$name" "$@" | tee "$OUT/logs/$name.txt"
}

run fig7 --iters "$ITERS" --reps "$REPS" --max-threads "$MAXT" --out-dir "$OUT"
run fig8 --iters "$ITERS" --reps "$REPS" --max-threads "$MAXT" --out-dir "$OUT"
run fig9 --iters "$ITERS" --reps "$REPS" --max-threads "$MAXT" --out-dir "$OUT"
run fig10 --iters 2000 --max-size "${FIG10_MAX:-1000000}" --out-dir "$OUT"
run latency --iters "$ITERS" --threads "${LAT_THREADS:-8}" --out-dir "$OUT"

echo "All figures regenerated under $OUT/"
