#!/usr/bin/env bash
# Records the perf baseline: builds the harness in release mode and runs
# the `bench_record` binary, which sweeps the slow-path grid
# ({epoch, HP} x {base, opt(1+2)} x {reuse, alloc} x {pairs, 50-50}),
# the fast-path ablation cells (wf-fast vs wf-epoch opt_both,
# wf-fast-hp vs wf-hp opt_both), and the reaper ablation
# (opt_both+reap vs opt_both, plus an abandoned-handle reap-latency
# probe), the three-way engine shootout (wCQ vs both KP variants,
# plus the stalled-reader residency probe), and the channel
# shard x batch sweep with its open-loop p50/p99/p999 latency pass,
# writing throughput, allocs/op, fallback rates, reap/quarantine
# counts, and latency columns — plus the overload ablation (parked
# bounded send vs a bench-local spin-send, and the KP admission gate
# on vs off on backpressured cells) — to BENCH_PR8.json at the root.
# Scale knobs:
#   ITERS    iterations per thread per rep   (default: 50000)
#   REPS     reps per cell (median reported) (default: 5)
#   OUT      output path                     (default: BENCH_PR8.json)
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS="${ITERS:-50000}"
REPS="${REPS:-5}"
OUT="${OUT:-BENCH_PR8.json}"

cargo build -p harness --release --bin bench_record
cargo run -p harness --release -q --bin bench_record -- \
    --iters "$ITERS" --reps "$REPS" --out "$OUT"

echo "recorded -> $OUT"
