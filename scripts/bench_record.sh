#!/usr/bin/env bash
# Records the descriptor-reuse perf baseline: builds the harness in
# release mode and runs the `bench_record` binary, which sweeps
# {epoch, HP} x {base, opt(1+2)} x {reuse, alloc} x {pairs, 50-50} and
# writes throughput + allocs/op to BENCH_PR2.json at the repo root.
# Scale knobs:
#   ITERS    iterations per thread per rep   (default: 50000)
#   REPS     reps per cell (median reported) (default: 5)
#   OUT      output path                     (default: BENCH_PR2.json)
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS="${ITERS:-50000}"
REPS="${REPS:-5}"
OUT="${OUT:-BENCH_PR2.json}"

cargo build -p harness --release --bin bench_record
cargo run -p harness --release -q --bin bench_record -- \
    --iters "$ITERS" --reps "$REPS" --out "$OUT"

echo "recorded -> $OUT"
