#!/usr/bin/env bash
# The repo's tier-1 gate plus lint and a chaos smoke, in one command:
#
#   1. release build + full workspace test suite (tier-1, see ROADMAP.md)
#   2. clippy with warnings denied, all targets
#   3. atomics audit: every atomic call site and unsafe occurrence must
#      match ATOMICS.toml (see DESIGN.md SS11), plus a self-test that the
#      gate actually fails on an undocumented atomic
#   4. a short seeded chaos-torture smoke (fault-injection suite with a
#      reduced seed matrix; scripts/torture.sh runs the full sweep)
#   5. a time-capped kill/restart soak of the reaper rounds
#      (SOAK_SECS, default 120)
#   6. a no-default-features build (stats feature off) to keep the
#      feature matrix honest
#   7. best-effort sanitizer stages: Miri and ThreadSanitizer run when
#      the toolchain supports them, skip loudly when it does not
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: release build + workspace tests ==="
cargo build --release
cargo test -q

echo "=== clippy (warnings denied) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== atomics audit (ATOMICS.toml manifest) ==="
cargo run -q -p atomics-audit

echo "=== atomics audit self-test (gate must fail on an undocumented atomic) ==="
# Inject an unlisted atomic into a scratch copy of the audited tree and
# assert the gate goes red. Guards against the failure mode where the
# scanner silently matches nothing and "passes" an empty audit.
selftest_dir="$(mktemp -d)"
trap 'rm -rf "$selftest_dir"' EXIT
mkdir -p "$selftest_dir/crates"
cp -r crates/kp-queue crates/hazard crates/idpool crates/wcq crates/kp-channel "$selftest_dir/crates/"
cat >> "$selftest_dir/crates/idpool/src/lib.rs" <<'EOF'

fn _audit_selftest_undocumented(x: &kp_sync::atomic::AtomicUsize) -> usize {
    x.load(kp_sync::atomic::Ordering::SeqCst)
}
EOF
if cargo run -q -p atomics-audit -- --root "$selftest_dir" --manifest ATOMICS.toml >/dev/null 2>&1; then
    echo "ci: FAIL — audit passed despite an injected undocumented atomic" >&2
    exit 1
fi
echo "self-test ok: injected atomic was caught"

echo "=== chaos smoke (seeded fault injection) ==="
cargo test --features chaos --release -q --test torture

echo "=== fast-path matrix (DESIGN.md SS12) ==="
# The fast-path/slow-path split, end to end: unit suites in both
# variants, the harness fast variants, mixed fast/slow linearizability
# rounds, and the mid-demotion crash cases from the chaos suite.
cargo test -p kp-queue --release -q fast
cargo test -p harness --release -q --lib fast
cargo test --release -q --test linearizability wf_fast
cargo test --features chaos --release -q --test torture demotion

echo "=== wCQ engine gate (DESIGN.md SS14) ==="
# The bounded ring-buffer engine, end to end: its unit suite (SCQ
# packing/wraparound proptests included), seeded linearizability churn
# (fast, slow-only and tiny-ring rounds), the chaos kill matrix at every
# wcq.* site, and the bounded-memory gate (zero allocation under a
# stalled reader, where the KP engines' backlog grows).
cargo test -p wcq --release -q
cargo test --release -q --test linearizability wcq
cargo test --features chaos --release -q --test torture wcq
cargo test --release -q --test memory_bound

echo "=== channel gate (DESIGN.md SS15) ==="
# The sharded channel front-end, end to end: the crate's unit suite,
# the cross-engine integration tests (blocking, batched and async
# receive over both shard cores), and the seeded chaos rounds --
# FIFO-per-producer under stalls and the parked-receiver lost-wakeup
# hunt at the chan.{route,batch,park,wake} sites.
cargo test -p kp-channel --release -q
cargo test --release -q --test channel
cargo test --features chaos --release -q --test torture channel

echo "=== overload gate (DESIGN.md SS16) ==="
# Overload control, end to end: deadline accuracy (never early), parked
# bounded send, admission control bounding the unbounded engines'
# backlog (the alloc-track gate inside memory_bound), quarantine
# detect/readmit + the full-quarantined-shard send_batch regression,
# and the seeded chaos rounds -- the parked-sender lost-wakeup hunt at
# chan.{send_park,wake}, deadline accuracy under stalls, and the
# kill-mid-quarantine recovery round.
cargo test --release -q --test overload
cargo test --features chaos --release -q --test torture \
    channel_parked_senders_never_lose_wakeups \
    channel_deadlines_never_fire_early_under_seeded_stalls \
    channel_quarantine_survives_consumer_killed_mid_drain

echo "=== soak: kill/restart with the reaper on (DESIGN.md SS13) ==="
# Time-capped repetition of the abandoned-handle rounds: sudden-death
# kills at enqueue/dequeue/demotion sites with reaping, adoption,
# takeover and quarantine asserted by the tests themselves. The seeded
# storms are fixed per test; the soak value is re-running the whole
# matrix under fresh OS scheduling until the cap. scripts/torture.sh
# runs the full (non-reap) site sweep.
soak_deadline=$(( $(date +%s) + ${SOAK_SECS:-120} ))
soak_rounds=0
while [ "$(date +%s)" -lt "$soak_deadline" ]; do
    cargo test --features chaos --release -q --test torture reap \
        || { echo "ci: FAIL — soak round $soak_rounds" >&2; exit 1; }
    soak_rounds=$((soak_rounds + 1))
done
echo "soak ok: $soak_rounds round(s) within ${SOAK_SECS:-120}s"

echo "=== feature matrix: stats off ==="
cargo build -p kp-queue --no-default-features

echo "=== miri (best-effort) ==="
scripts/miri.sh || { echo "ci: miri stage failed" >&2; exit 1; }

echo "=== thread sanitizer (best-effort) ==="
scripts/tsan.sh || { echo "ci: tsan stage failed" >&2; exit 1; }

echo "ci: all gates green"
