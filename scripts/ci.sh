#!/usr/bin/env bash
# The repo's tier-1 gate plus lint and a chaos smoke, in one command:
#
#   1. release build + full workspace test suite (tier-1, see ROADMAP.md)
#   2. clippy with warnings denied, all targets
#   3. a short seeded chaos-torture smoke (fault-injection suite with a
#      reduced seed matrix; scripts/torture.sh runs the full sweep)
#   4. a no-default-features build (stats feature off) to keep the
#      feature matrix honest
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: release build + workspace tests ==="
cargo build --release
cargo test -q

echo "=== clippy (warnings denied) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== chaos smoke (seeded fault injection) ==="
cargo test --features chaos --release -q --test torture

echo "=== feature matrix: stats off ==="
cargo build -p kp-queue --no-default-features

echo "ci: all gates green"
