#!/usr/bin/env python3
"""Regenerates ATOMICS.toml from `cargo run -p atomics-audit -- --dump`.

The audit manifest is a *reviewed* artifact: the `role`, `why`, `sc`,
and `model_steps` fields below are the human-maintained content, and
this script is how they survive a refactor that moves call sites. Run:

    cargo run -p atomics-audit -- --dump > /tmp/skeleton.toml
    python3 scripts/gen_atomics_manifest.py /tmp/skeleton.toml > ATOMICS.toml
    cargo run -p atomics-audit        # must be clean

A site the table below does not know is a hard error — new atomics must
be annotated here (or directly in ATOMICS.toml) before the gate passes.
"""
import re
import sys

# ---------------------------------------------------------------------
# Shared justification strings
# ---------------------------------------------------------------------

SC_HELP = (
    "helping coherence: this read participates in the Lemma 1/2 argument and "
    "must agree with the descriptors' SeqCst pending checks in the single total "
    "order; the DESIGN.md SS11 counterexamples show Acquire losing operations"
)
SC_DOORWAY = (
    "bakery doorway: the phase announcement must be totally ordered with peers' "
    "maxPhase scans or a helper can overlook an older pending operation, "
    "breaking the wait-freedom bound (DESIGN.md SS11)"
)
SC_RESET = (
    "no-op-skip recycling counterexample (DESIGN.md SS11): a helper still "
    "scanning must not act on a stale pending descriptor after the owner "
    "recycled the node; the idle transition must enter the total order"
)
SC_APPEND = (
    "linearization point of enqueue (L74): total order with the SeqCst pending "
    "checks gives Lemma 1's exactly-once append; failure ordering is Relaxed "
    "because the loaded value is discarded and helpers re-read with SeqCst"
)
SC_LOCK = (
    "linearization point of a successful dequeue (L135): the deq_tid lock must "
    "be totally ordered with the helpers' pending checks (Lemma 2 exactly-once); "
    "failure value discarded, re-read with SeqCst"
)
SC_CTRL = (
    "the exactly-once descriptor transition (step 2 of Figures 5-6) must be "
    "coherent with helpers' SeqCst pending checks (Lemmas 1-2); failure value "
    "unused (.is_ok()) so the failure ordering is Relaxed"
)
SC_SWING = (
    "tail/head swing races with the same CAS from every helper; SeqCst keeps "
    "the swing ordered with the pending checks so a helper never operates on a "
    "retired sentinel; failure discarded"
)
SC_TOKEN = (
    "reap token handoff (DESIGN.md SS13.4): token publication, retraction and "
    "the reaper's swap must share the single total order with the lease "
    "transitions, or a reaper could quarantine a token published after "
    "revocation (erasing a live pin, a use-after-free) or miss a retraction "
    "and quarantine the recycled slot's live successor thread"
)
SC_HAZARD_SCAN = (
    "hazard-pointer scan requirement: the scan's reads must follow the "
    "retiree's unlink in the total order (store-load), or the scan can miss a "
    "hazard a racing protect() already validated"
)
SC_HAZARD_PUB = (
    "Dekker-style store-load: the hazard publication must precede the "
    "validating re-read in the total order; Release is insufficient"
)
SC_QUIESCENT = (
    "quiescent-only diagnostic off every hot path; SeqCst chosen for "
    "simplicity over a caller-trusted Relaxed walk"
)

SC_WCQ = (
    "SCQ cross-variable agreement (DESIGN.md SS14): tail/head tickets, ring "
    "entries and the threshold are separate atomics read in store-load pairs "
    "(FAA ticket then entry, entry install then threshold, catchup then "
    "decrement); SeqCst keeps every pair in the single total order -- "
    "Acquire/Release admits the reordering that breaks the emptiness "
    "argument. SeqCst loads are free on x86 and the RMWs are lock-prefixed "
    "at any ordering"
)
SC_CHAN_DEKKER = (
    "channel waker protocol (DESIGN.md SS15): the sleepers gauge and the shard "
    "contents form a Dekker-style store-load pair -- a receiver registers "
    "(gauge up) then re-checks every shard, a sender enqueues then checks the "
    "gauge -- and both sides must share the single total order, or a sender "
    "can read gauge==0 while the receiver's re-check misses the value: a "
    "lost wakeup with the receiver parked forever. Acquire/Release admits "
    "exactly that reordering"
)

SC_PARK_DEKKER = (
    "waiter-registry doorway (DESIGN.md SS15/SS16): the sleepers gauge and the "
    "guarded condition (shard contents for receivers, free capacity for "
    "senders) form a Dekker-style store-load pair -- a waiter registers "
    "(gauge up) then re-checks the condition, a notifier makes the condition "
    "true then reads the gauge -- and both sides must share the single total "
    "order or the notifier can read gauge==0 while the waiter's re-check "
    "misses the change: a lost wakeup with the waiter parked forever. "
    "Acquire/Release admits exactly that reordering"
)

SC_WCQ_REC = (
    "wCQ record handshake (DESIGN.md SS14): the owner's arg/gauge/ctrl "
    "publication and the helpers' gauge-probe/ctrl-scan/arg-dispatch reads "
    "form a Dekker-style store-load pair, and the seq/ring echo that rejects "
    "mixed-generation reads only works if both sides share the single total "
    "order; CAS failure values are re-read, so failure orderings are Relaxed "
    "unless the failure value itself is re-tested"
)

WHY_TEST = "test scaffolding"
WHY_INIT = "single-threaded initialisation before the structure is shared"
WHY_TEARDOWN = "exclusive (&mut) teardown; no concurrent access remains"
WHY_RECYCLE = "re-initialises a recycled node while exclusively owned, before republication"

# ---------------------------------------------------------------------
# Annotation table
# ---------------------------------------------------------------------
# Key: (file, fn) -> either a single spec or {(op, index): spec}.
# Spec: dict(role=..., why=..., sc=..., steps=[...]); sc/steps optional.


def spec(role, why, sc=None, steps=None):
    return {"role": role, "why": why, "sc": sc, "steps": steps or []}


D = "crates/hazard/src/domain.rs"
P = "crates/hazard/src/participant.rs"
R = "crates/hazard/src/retired.rs"
HT = "crates/hazard/src/tests.rs"
HI = "crates/hazard/tests/integration.rs"
ID = "crates/idpool/src/lib.rs"
DESC = "crates/kp-queue/src/desc.rs"
HA = "crates/kp-queue/src/handle.rs"
Q = "crates/kp-queue/src/queue.rs"
ST = "crates/kp-queue/src/stats.rs"
QT = "crates/kp-queue/src/tests.rs"
NO = "crates/kp-queue/src/node.rs"
AR = "crates/kp-queue/tests/alloc_regression.rs"
EX = "crates/kp-queue/examples/hp_stress_probe.rs"
HH = "crates/kp-queue/src/hp/handle.rs"
HP = "crates/kp-queue/src/hp/pool.rs"
HQ = "crates/kp-queue/src/hp/queue.rs"
HTY = "crates/kp-queue/src/hp/types.rs"
HTE = "crates/kp-queue/src/hp/tests.rs"
CH = "crates/kp-channel/src/lib.rs"
PK = "crates/kp-channel/src/park.rs"
OV = "crates/kp-channel/src/overload.rs"
W = "crates/wcq/src/lib.rs"
WR = "crates/wcq/src/ring.rs"
WT = "crates/wcq/src/tests.rs"

TABLE = {
    # ----- hazard/domain.rs ------------------------------------------
    (D, "total_slots"): spec(
        "reclamation",
        "sizes the hazard snapshot; Acquire pairs with enter's record-publishing AcqRel fetch_add",
    ),
    (D, "enter"): {
        ("load", 0): spec("reclamation", "record-list head read; Acquire makes each record's fields visible before the reuse probe"),
        ("load", 1): spec("reclamation", "speculative availability probe; the claim itself is the CAS below"),
        ("compare_exchange", 0): spec("reclamation", "claims a retired record: AcqRel acquires the previous owner's slot clears and publishes the claim; a failed probe carries no data dependency"),
        ("load", 2): spec("reclamation", "re-reads the list head for the publish CAS"),
        ("compare_exchange", 1): spec("reclamation", "publishes a new record; the failure Acquire is load-bearing: the retry writes the observed head into the record's plain `next`, which later traversers dereference, so the pointee's initialisation must be visible"),
        ("fetch_add", 0): spec("reclamation", "publishes the enlarged slot count; AcqRel orders it with the record push"),
    },
    (D, "collect_hazards_into"): spec("reclamation", "the scan's hazard snapshot", sc=SC_HAZARD_SCAN),
    (D, "take_orphans"): spec("reclamation", "adopts the orphan list: acquires the exiting thread's retirements, releases the emptied head"),
    (D, "push_orphans"): {
        ("load", 0): spec("reclamation", "orphan head read for the push CAS"),
        ("compare_exchange", 0): spec("reclamation", "publishes orphaned retirements; failure Acquire is load-bearing for the same plain-`next` republish reason as enter's record push"),
    },
    (D, "quarantine"): {
        ("load", 0): spec("reclamation", "record-list head read; Acquire makes each record's fields visible before the token match"),
        ("load", 1): spec("reclamation", "confirms the record is still active before clearing; the reaper's exclusivity comes from the lease election, not this load"),
        ("store", 0): spec("reclamation", "clears an abandoned hazard slot; SeqCst so the clear enters the total order before the next scan's snapshot (store-load, SS11.3) -- a weaker clear could let a dead record protect a node forever", sc=SC_HAZARD_SCAN),
        ("store", 1): spec("reclamation", "returns the quarantined record to the free pool; Release publishes the slot clears to the next claimant (pairs with enter's claim CAS)"),
    },
    (D, "drop"): spec("reclamation", WHY_TEARDOWN),
    (D, "fmt"): spec("stats", "Debug formatting; approximate values are fine"),
    # ----- hazard/participant.rs -------------------------------------
    (P, "set"): spec("reclamation", "publishes a hazard pointer", sc=SC_HAZARD_PUB),
    (P, "clear"): spec("reclamation", "un-publishes after the protected access; Release keeps the access before the clear"),
    (P, "protect"): {
        ("load", 0): spec("reclamation", "first read of the target pointer; Acquire so a non-null result dereferences an initialised object"),
        ("load", 1): spec("reclamation", "validation re-read ordered after the hazard store", sc=SC_HAZARD_PUB),
    },
    (P, "drop"): {
        ("store", 0): spec("reclamation", "clears remaining hazards before the record is recycled"),
        ("store", 1): spec("reclamation", "returns the record; Release publishes the slot clears to the next claimant (pairs with enter's claim CAS)"),
    },
    # ----- hazard/retired.rs (tests module) --------------------------
    (R, "drop"): spec("stats", WHY_TEST),
    (R, "reclaim_runs_drop"): spec("stats", WHY_TEST),
    (R, "record"): spec("stats", WHY_TEST),
    (R, "with_fn_forwards_the_context"): spec("stats", WHY_TEST),
    # ----- idpool ----------------------------------------------------
    (ID, "in_use"): spec("stats", "diagnostic count; Acquire gives a conservative snapshot"),
    (ID, "acquire"): {
        ("fetch_add", 0): spec("stats", "probe-start rotation hint; pure performance, no synchronization intent"),
        ("compare_exchange", 0): spec("doorway", "claims a virtual tid (SS3.3 long-lived renaming): success Acquire pairs with release's AcqRel swap so tid-associated state is visible to the new owner; a failed probe acquires nothing"),
    },
    (ID, "acquire_exact"): spec("doorway", "deterministic-tid variant of acquire; same pairing argument"),
    (ID, "release"): spec("doorway", "returns the tid (Claimed -> Free at the owner's generation); AcqRel publishes the owner's final writes to the next claimant and fails silently on a revoked lease -- the idpool double-release protection"),
    (ID, "inspect"): spec("doorway", "reaper-side lease snapshot; Acquire pairs with the claim/reap CASes so the observed state and generation travel together"),
    (ID, "try_claim"): {
        ("load", 0): spec("doorway", "speculative free-slot probe; the claim itself is the CAS below"),
        ("compare_exchange", 0): spec("doorway", "claims a virtual tid with a bumped generation (SS3.3 long-lived renaming made lease-based, DESIGN.md SS13.2): success Acquire pairs with release/finish_reap so tid-associated state is visible to the new owner; a failed probe acquires nothing"),
    },
    (ID, "begin_reap"): spec("doorway", "lease revocation CAS (Claimed -> Reaping at the observed generation, DESIGN.md SS13.2); AcqRel acquires the owner's published state and releases reap exclusivity to finish/takeover"),
    (ID, "finish_reap"): spec("doorway", "reap completion CAS (Reaping -> Free, bumped generation); the Release half publishes the reaper's cleanup to the slot's next claimant"),
    (ID, "takeover_reap"): spec("doorway", "reap adoption CAS (Reaping -> Reaping, bumped generation) invalidating a dead reaper's claim so a revived reaper cannot finish twice; same pairing as begin_reap"),
    (ID, "oversubscribed_acquire_never_duplicates"): spec("stats", WHY_TEST),
    (ID, "concurrent_reap_race_single_winner"): spec("stats", WHY_TEST),
    # ----- kp-queue/desc.rs ------------------------------------------
    (DESC, "load_ctrl"): spec("helper-guard", "caller-chosen ordering: SeqCst on help paths (pending-check coherence), Acquire in epilogues"),
    (DESC, "load_phase"): spec("doorway", "phase read for the Lemma-1 helping decision; callers pass SeqCst on hot paths"),
    (DESC, "view"): {
        ("load", 0): spec("helper-guard", "ctrl half of the (ctrl, phase) snapshot, caller-chosen ordering"),
        ("load", 1): spec("helper-guard", "phase half; publish stores phase before ctrl, so Acquire here sees the phase that belongs to the observed ctrl"),
    },
    (DESC, "publish"): {
        ("load", 0): spec("helper-guard", "own slot's version bits; the owner is the only writer between publishes"),
        ("store", 0): spec("doorway", "announces the operation's phase", sc=SC_DOORWAY),
        ("store", 1): spec("doorway", "descriptor becomes pending; must follow its phase in the total order", sc=SC_DOORWAY),
    },
    (DESC, "reset"): {
        ("load", 0): spec("helper-guard", "own slot's version bits; owner-only write window"),
        ("store", 0): spec("doorway", "idle-transition phase store", sc=SC_RESET),
        ("store", 1): spec("doorway", "idle-transition ctrl store", sc=SC_RESET),
    },
    (DESC, "cas_ctrl"): spec(
        "linearization",
        "the version-tagged exactly-once descriptor transition (step 2 of Figures 5-6)",
        sc=SC_CTRL,
        steps=["AckEnq", "AckDeq", "Stage0Empty", "Stage0NonEmpty", "Restage"],
    ),
    (DESC, "load_beat"): spec("stats", "heartbeat read for the freeze oracle (DESIGN.md SS13.3); Relaxed -- liveness detection needs recency, not ordering, and a missed bump only delays a reap by one patience window"),
    (DESC, "bump_beat"): spec("stats", "heartbeat bump (owner is the only writer); Relaxed for the same reason as load_beat"),
    (DESC, "bump_beat_shared"): spec("stats", "heartbeat bump from handle Drop, which may race a successor owner after a reap; a real RMW (unlike bump_beat's load+store) cannot swallow the successor's increment, and Relaxed suffices as for load_beat"),
    (DESC, "try_retire"): spec(
        "linearization",
        "the reap election CAS: blanks the victim's observed descriptor word exactly once, and the unique winner owns the destructive reap steps (orphaned result claim, quarantine) -- the claim-safety rule of DESIGN.md SS13.4",
        sc="the retirement must enter the single total order with helpers' SeqCst pending checks, or a helper could act on a blanked descriptor (and two stale-word reapers could both win the election)",
        steps=["ReapClaim"],
    ),
    # ----- kp-queue/handle.rs ----------------------------------------
    (HA, "alloc_node"): spec("reclamation", WHY_RECYCLE),
    (HA, "op_prologue"): spec("reclamation", "publishes the handle's epoch-participant token for a future reap (DESIGN.md SS13.4)", sc=SC_TOKEN),
    (HA, "drop"): spec("reclamation", "retracts the epoch token before the id can recycle; mirrors op_prologue's publication", sc=SC_TOKEN),
    (HA, "read_deq_result"): spec("helper-guard", "reads the locked sentinel's next for the result; Acquire pairs with the append CAS so the payload is visible"),
    # ----- kp-queue/queue.rs -----------------------------------------
    (Q, "with_config"): spec("helper-guard", WHY_INIT),
    (Q, "len_approx"): spec("stats", "advisory O(n) walk; Acquire (release half of the append CAS) suffices to dereference initialised nodes"),
    (Q, "is_empty"): spec("stats", "advisory emptiness probe; same argument as len_approx"),
    (Q, "next_phase"): spec("doorway", "monotone phase ticket (SS3.3 AtomicCounter policy)", sc=SC_DOORWAY),
    (Q, "help_enq"): {
        ("load", 0): spec("helper-guard", "tail read opening the help loop", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "tail-lag check (L72)", sc=SC_HELP),
        ("load", 2): spec("helper-guard", "tail re-validation before the append (L73)", sc=SC_HELP),
        ("compare_exchange", 0): spec("linearization", "the append CAS (L74)", sc=SC_APPEND, steps=["Append"]),
    },
    (Q, "help_finish_enq"): {
        ("load", 0): spec("helper-guard", "tail read (L90)", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "appended-node read (L91)", sc=SC_HELP),
        ("compare_exchange", 0): spec("helper-guard", "FAST_ENQUEUER branch: unconditional tail swing past a fast-appended node (no descriptor to ack; model FastFixTail)", sc=SC_SWING),
        ("load", 2): spec("helper-guard", "tail re-validation (L92)", sc=SC_HELP),
        ("compare_exchange", 1): spec("helper-guard", "tail swing (L94, model FixTail)", sc=SC_SWING),
    },
    (Q, "help_deq"): {
        ("load", 0): spec("helper-guard", "head read opening the dequeue help loop (L110)", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "tail read for the empty/lag classification (L110)", sc=SC_HELP),
        ("load", 2): spec("helper-guard", "sentinel next read (L110)", sc=SC_HELP),
        ("load", 3): spec("helper-guard", "head re-validation (L112)", sc=SC_HELP),
        ("load", 4): spec("helper-guard", "tail-lag re-check (L122)", sc=SC_HELP),
        ("load", 5): spec("helper-guard", "head consistency check before the lock (L132)", sc=SC_HELP),
        ("compare_exchange", 0): spec("linearization", "the deq_tid lock CAS (L135)", sc=SC_LOCK, steps=["Lock"]),
    },
    (Q, "help_finish_deq"): {
        ("load", 0): spec("helper-guard", "head read (L145)", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "locked sentinel's next read (L146)", sc=SC_HELP),
        ("load", 2): spec("helper-guard", "deq_tid read identifying the lock owner (L146)", sc=SC_HELP),
        ("load", 3): spec("helper-guard", "FAST_DEQUEUER branch: head re-validation before the helper-side swing (no descriptor to ack)", sc=SC_HELP),
        ("compare_exchange", 0): spec("helper-guard", "FAST_DEQUEUER branch: head swing past a fast-locked sentinel (model FastFixHead); winner owns its retirement", sc=SC_SWING),
        ("load", 4): spec("helper-guard", "head re-validation (L148)", sc=SC_HELP),
        ("compare_exchange", 1): spec("helper-guard", "head swing (L150, model FixHead); winner owns sentinel retirement", sc=SC_SWING),
    },
    (Q, "try_fast_enqueue"): {
        ("load", 0): spec("helper-guard", "fast-path tail read opening the bounded MS loop", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "fast-path tail.next read classifying settled vs dangling", sc=SC_HELP),
        ("load", 2): spec("helper-guard", "fast-path tail re-validation before acting on the next read", sc=SC_HELP),
        ("compare_exchange", 0): spec("linearization", "the fast append CAS -- same L74 linearization point as the slow path, reached without a descriptor", sc=SC_APPEND, steps=["FastAppend"]),
        ("compare_exchange", 1): spec("helper-guard", "owner's best-effort tail swing (model FastFixTail); helpers' FAST_ENQUEUER branch races the same CAS", sc=SC_SWING),
    },
    (Q, "try_fast_dequeue"): {
        ("load", 0): spec("helper-guard", "fast-path head read opening the bounded MS loop", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "fast-path tail read for the empty/lag classification", sc=SC_HELP),
        ("load", 2): spec("linearization", "fast-path sentinel next read; with the head validated and first == last, observing null here is the empty-dequeue linearization (no descriptor CAS needed)", sc=SC_HELP, steps=["FastEmpty"]),
        ("load", 3): spec("helper-guard", "fast-path head re-validation before acting on the next read", sc=SC_HELP),
        ("compare_exchange", 0): spec("linearization", "the fast deq_tid lock CAS (FAST_DEQUEUER marker) -- same L135 linearization point as the slow path", sc=SC_LOCK, steps=["FastLock"]),
        ("compare_exchange", 1): spec("helper-guard", "owner's best-effort head swing (model FastFixHead); winner recycles the unlinked sentinel", sc=SC_SWING),
    },
    (Q, "reap_slot"): {
        ("load", 0): spec("helper-guard", "adopted dequeue's locked-sentinel next read; Acquire pairs with the append CAS so the claimed-and-discarded value is visible (DESIGN.md SS13.4)"),
        ("swap", 0): spec("reclamation", "takes the victim's epoch-participant token exactly once (zeroing the slot) so a later reap of the slot's next lease cannot quarantine a stale token", sc=SC_TOKEN),
        ("load", 1): spec("reclamation", "publisher scan (DESIGN.md SS13.4): spares the quarantine when any live handle still publishes the victim's token", sc="the scan must be ordered after this reaper's own token swap in the single total order with every other reaper's swap+scan and every handle's publish-before-pin, or two racing reapers could both see the other's not-yet-swapped victim entry and both skip a genuinely wedged quarantine"),
    },
    (Q, "append_no_swing"): {
        ("load", 0): spec("helper-guard", "test-only lagging-tail fixture (sudden-death wedge, DESIGN.md SS13.1): tail read opening the MS loop", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "test-only fixture: tail.next read classifying settled vs dangling", sc=SC_HELP),
        ("load", 2): spec("helper-guard", "test-only fixture: tail re-validation before acting on the next read", sc=SC_HELP),
        ("compare_exchange", 0): spec("linearization", "test-only fixture: the fast append CAS without the step-3 tail swing -- same L74 linearization point as try_fast_enqueue", sc=SC_APPEND, steps=["FastAppend"]),
    },
    (Q, "drop"): spec("reclamation", WHY_TEARDOWN),
    (Q, "pressure_hint"): spec("stats", "advisory memory-pressure gauge (cache overflows) for admission control; Relaxed monotonic counter read, no synchronization intent"),
    # ----- kp-queue/stats.rs -----------------------------------------
    (ST, "bump"): spec("stats", "monotonic helping counter; no synchronization intent"),
    (ST, "snapshot"): spec("stats", "counter snapshot; Relaxed per-counter reads, no cross-counter consistency promised"),
    (ST, "drained"): spec("stats", "advisory drain heartbeat (dequeues minus empty dequeues) for the overload watchdog; Relaxed -- exact at quiescence, stale by in-flight ops under load, and the watchdog only compares it across ticks"),
    (ST, "depth"): spec("stats", "advisory resident-value gauge; loads the dequeue side first (via drained) so a racing completion overcounts, never goes negative -- admission control treats it as a hint, not a bound"),
    # ----- kp-queue tests / examples ---------------------------------
    (QT, "drop"): spec("stats", WHY_TEST),
    (QT, "drop_releases_resident_values"): spec("stats", WHY_TEST),
    (NO, "fresh_node_is_unlocked"): spec("stats", WHY_TEST),
    (AR, "contended_window_allocs"): spec("stats", "test marker delimiting the measured allocation window"),
    (EX, "main"): spec("stats", "stress-probe progress reporting"),
    # ----- kp-queue/hp/handle.rs -------------------------------------
    (HH, "alloc_node"): spec("reclamation", WHY_RECYCLE),
    (HH, "steal_batch"): spec("reclamation", "walks a privately stolen freelist; Relaxed after steal's Acquire swap"),
    (HH, "read_deq_result"): spec("reclamation", "owner's half of the two-token disposal gate; AcqRel makes exactly one side observe both tokens and free the node"),
    (HH, "drop"): spec("reclamation", "retracts the hazard-record token before the id can recycle; mirrors register's publication", sc=SC_TOKEN),
    # ----- kp-queue/hp/pool.rs ---------------------------------------
    (HP, "release"): {
        ("load", 0): spec("reclamation", "bounded-cache size check; advisory"),
        ("load", 1): spec("reclamation", "head read for the push loop"),
        ("store", 0): spec("reclamation", "links the node; exclusively owned until the CAS publishes it"),
        ("compare_exchange_weak", 0): spec("reclamation", "publishes the node to the Treiber freelist; Release orders the free_next link before publication; failed pushes retry with a fresh head read"),
        ("fetch_add", 0): spec("reclamation", "approximate freelist length"),
        ("fetch_add", 1): spec("stats", "memory-pressure backpressure counter (DESIGN.md SS13.5): nodes freed past the pool cap"),
    },
    (HP, "overflows"): spec("stats", "backpressure counter snapshot"),
    (HP, "steal"): {
        ("swap", 0): spec("reclamation", "takes the whole freelist; Acquire pairs with release's Release so the links are visible"),
        ("store", 0): spec("reclamation", "approximate length reset"),
    },
    (HP, "drop"): spec("reclamation", WHY_TEARDOWN),
    (HP, "reclaim_into_pool"): spec("reclamation", "scan's half of the two-token disposal gate; AcqRel mirrors read_deq_result"),
    (HP, "release_steal_roundtrip"): spec("stats", WHY_TEST),
    (HP, "token_gate_disposes_exactly_once"): spec("stats", "test drives the two-token gate directly"),
    # ----- kp-queue/hp/queue.rs --------------------------------------
    (HQ, "len_approx_quiescent"): spec("stats", "quiescent-only O(n) walk", sc=SC_QUIESCENT),
    (HQ, "pressure_hint"): spec("stats", "advisory memory-pressure gauge (cache overflows plus pool overflows) for admission control; Relaxed monotonic counter reads, no synchronization intent"),
    (HQ, "next_phase"): spec("doorway", "monotone phase ticket (SS3.3 AtomicCounter policy)", sc=SC_DOORWAY),
    (HQ, "help_enq"): {
        ("load", 0): spec("helper-guard", "tail-lag check (L72)", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "tail re-validation before the append (L73)", sc=SC_HELP),
        ("compare_exchange", 0): spec("linearization", "the append CAS (L74)", sc=SC_APPEND, steps=["Append"]),
    },
    (HQ, "help_finish_enq"): {
        ("load", 0): spec("helper-guard", "appended-node read (L91)", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "tail read (L90)", sc=SC_HELP),
        ("load", 2): spec("helper-guard", "tail re-validation (L92)", sc=SC_HELP),
        ("compare_exchange", 0): spec("helper-guard", "FAST_ENQUEUER branch: unconditional tail swing past a fast-appended node (model FastFixTail)", sc=SC_SWING),
        ("compare_exchange", 1): spec("helper-guard", "tail swing (L94, model FixTail)", sc=SC_SWING),
    },
    (HQ, "help_deq"): {
        ("load", 0): spec("helper-guard", "tail read for the empty/lag classification (L110)", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "sentinel next read (L110)", sc=SC_HELP),
        ("load", 2): spec("helper-guard", "head re-validation (L112)", sc=SC_HELP),
        ("load", 3): spec("helper-guard", "tail-lag re-check (L122)", sc=SC_HELP),
        ("load", 4): spec("helper-guard", "head consistency check before the lock (L132)", sc=SC_HELP),
        ("compare_exchange", 0): spec("linearization", "the deq_tid lock CAS (L135)", sc=SC_LOCK, steps=["Lock"]),
    },
    (HQ, "help_finish_deq"): {
        ("load", 0): spec("helper-guard", "locked sentinel's next read (L146)", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "head read (L145)", sc=SC_HELP),
        ("load", 2): spec("helper-guard", "deq_tid read identifying the lock owner (L146)", sc=SC_HELP),
        ("load", 3): spec("helper-guard", "FAST_DEQUEUER branch: head re-validation before the helper-side swing", sc=SC_HELP),
        ("compare_exchange", 0): spec("helper-guard", "FAST_DEQUEUER branch: head swing past a fast-locked sentinel (model FastFixHead); winner retires it", sc=SC_SWING),
        ("load", 4): spec("helper-guard", "head re-validation (L148)", sc=SC_HELP),
        ("compare_exchange", 1): spec("helper-guard", "head swing (L150, model FixHead); winner retires the sentinel", sc=SC_SWING),
    },
    (HQ, "try_fast_enqueue"): {
        ("load", 0): spec("helper-guard", "fast-path tail.next read classifying settled vs dangling (tail itself read via protect)", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "fast-path tail re-validation before acting on the next read", sc=SC_HELP),
        ("compare_exchange", 0): spec("linearization", "the fast append CAS -- same L74 linearization point as the slow path, reached without a descriptor", sc=SC_APPEND, steps=["FastAppend"]),
        ("compare_exchange", 1): spec("helper-guard", "owner's best-effort tail swing (model FastFixTail); helpers' FAST_ENQUEUER branch races the same CAS", sc=SC_SWING),
    },
    (HQ, "try_fast_dequeue"): {
        ("load", 0): spec("helper-guard", "fast-path tail read for the empty/lag classification (head read via protect)", sc=SC_HELP),
        ("load", 1): spec("linearization", "fast-path sentinel next read; with the head validated and first == last, observing null here is the empty-dequeue linearization", sc=SC_HELP, steps=["FastEmpty"]),
        ("load", 2): spec("helper-guard", "fast-path head re-validation before acting on the next read", sc=SC_HELP),
        ("compare_exchange", 0): spec("linearization", "the fast deq_tid lock CAS (FAST_DEQUEUER marker) -- same L135 linearization point as the slow path", sc=SC_LOCK, steps=["FastLock"]),
        ("fetch_or", 0): spec("reclamation", "fast owner's half of the two-token disposal gate on the new sentinel; AcqRel mirrors read_deq_result"),
        ("compare_exchange", 1): spec("helper-guard", "owner's best-effort head swing (model FastFixHead); winner retires the unlinked sentinel", sc=SC_SWING),
    },
    (HQ, "reap_slot"): {
        ("fetch_or", 0): spec("reclamation", "reaper's half of the adopted dequeue's two-token disposal gate (DESIGN.md SS13.4); AcqRel mirrors read_deq_result"),
        ("swap", 0): spec("reclamation", "takes the victim's hazard-record token exactly once (zeroing the slot) so a later reap of the slot's next lease cannot quarantine a stale token", sc=SC_TOKEN),
    },
    (HQ, "append_no_swing"): {
        ("load", 0): spec("helper-guard", "test-only lagging-tail fixture (sudden-death wedge, DESIGN.md SS13.1): tail.next read classifying settled vs dangling (tail itself read via protect)", sc=SC_HELP),
        ("load", 1): spec("helper-guard", "test-only fixture: tail re-validation before acting on the next read", sc=SC_HELP),
        ("compare_exchange", 0): spec("linearization", "test-only fixture: the fast append CAS without the step-3 tail swing -- same L74 linearization point as try_fast_enqueue", sc=SC_APPEND, steps=["FastAppend"]),
    },
    (HQ, "register"): spec("reclamation", "publishes the new participant's hazard-record token for a future reap (DESIGN.md SS13.4)", sc=SC_TOKEN),
    (HQ, "drop"): spec("reclamation", WHY_TEARDOWN),
    # ----- kp-queue/hp tests -----------------------------------------
    (HTY, "fresh_nodes_start_ungated"): spec("stats", WHY_TEST),
    (HTY, "sentinels_are_born_consumed"): spec("stats", WHY_TEST),
    (HTE, "drop"): spec("stats", WHY_TEST),
    (HTE, "values_dropped_exactly_once"): spec("stats", WHY_TEST),
    (HTE, "fast_path_values_dropped_exactly_once"): spec("stats", WHY_TEST),
    # ----- hazard tests ----------------------------------------------
    (HT, "drop"): spec("stats", WHY_TEST),
    (HT, "retire_without_hazard_reclaims_on_scan"): spec("stats", WHY_TEST),
    (HT, "protected_object_survives_scan"): spec("stats", WHY_TEST),
    (HT, "threshold_triggers_automatic_scan"): spec("stats", WHY_TEST),
    (HT, "domain_drop_frees_orphans"): spec("stats", WHY_TEST),
    (HT, "orphans_adopted_by_next_scan"): spec("stats", WHY_TEST),
    (HT, "concurrent_stress_no_use_after_free"): spec("stats", WHY_TEST),
    (HT, "two_domains_are_isolated"): spec("stats", WHY_TEST),
    (HT, "quarantine_clears_abandoned_hazards_and_recycles_the_record"): spec("stats", WHY_TEST),
    (HI, "push"): spec("reclamation", "test fixture: Treiber push publishing nodes whose reclamation is under test"),
    (HI, "pop"): spec("reclamation", "test fixture: Treiber pop; failure Acquire re-reads the head it will traverse from"),
    (HI, "treiber_stack_conservation_under_contention"): spec("stats", WHY_TEST),
    (HI, "drop"): spec("stats", WHY_TEST),
    (HI, "retired_under_protection_survives_until_release_across_threads"): spec("stats", WHY_TEST),
    # ----- kp-channel/src/lib.rs (waker protocol + lifecycle) ---------
    (CH, "is_disconnected"): spec("stats", "advisory disconnect probe for callers; Acquire pairs with the latch store"),
    (CH, "try_sender"): {
        ("load", 0): spec("helper-guard", "refuses to mint on a closed channel; Acquire pairs with the latch store"),
        ("fetch_add", 0): spec("stats", "round-robin shard assignment ticket; pure routing, no synchronization intent"),
        ("fetch_add", 1): spec("helper-guard", "sender refcount up; Relaxed -- minting is ordered by the &Channel borrow, the AcqRel decrement in sender_dropped carries the ordering"),
    },
    (CH, "try_receiver"): {
        ("load", 0): spec("helper-guard", "refuses to mint on a closed channel; Acquire pairs with the latch store"),
        ("fetch_add", 0): spec("helper-guard", "receiver refcount up, doubling as the sweep-cursor stagger ticket; Relaxed for the same reason as try_sender's"),
    },
    (CH, "register_waiter"): spec("doorway", "sleepers gauge up: the Dekker publication a sender's notify check must observe", sc=SC_CHAN_DEKKER),
    (CH, "cancel_waiter"): spec("doorway", "sleepers gauge down on withdrawal, balancing register_waiter under the registry lock", sc=SC_CHAN_DEKKER),
    (CH, "wake_one"): spec("doorway", "sleepers gauge down as the notifier pops a waiter; keeps the gauge equal to the registry length", sc=SC_CHAN_DEKKER),
    (CH, "notify_one"): spec("doorway", "sender-side Dekker check after an enqueue: a nonzero gauge means a receiver may have parked before the value landed", sc=SC_CHAN_DEKKER),
    (CH, "notify_many"): spec("doorway", "batch variant of notify_one's Dekker check; bounds the wake fan-out by the observed gauge", sc=SC_CHAN_DEKKER),
    (CH, "sender_dropped"): {
        ("fetch_sub", 0): spec("helper-guard", "last-sender detection: AcqRel so the ==1 winner observes every peer's sends before latching"),
        ("store", 0): spec("doorway", "the disconnect latch -- the point after which recv returns Disconnected; Release publishes it to the Acquire polls, and the wake_all broadcast re-checks it under the registry lock"),
    },
    (CH, "receiver_dropped"): {
        ("fetch_sub", 0): spec("helper-guard", "last-receiver detection: AcqRel mirror of sender_dropped"),
        ("store", 0): spec("doorway", "the send-side disconnect latch; senders poll it in their backpressure loops, so no broadcast is needed"),
    },
    (CH, "rx_closed"): spec("helper-guard", "send-path disconnect poll; Acquire pairs with the latch store"),
    (CH, "tx_closed"): spec("helper-guard", "recv-path disconnect poll; Acquire pairs with the latch store"),
    (CH, "fmt"): spec("stats", "Debug formatting; approximate values are fine"),
    (CH, "maybe_tick"): {
        ("load", 0): spec("stats", "tick-due probe on the watchdog's claim word; Relaxed -- recency not ordering, a stale read only delays a tick by one interval"),
        ("compare_exchange", 0): spec("helper-guard", "elects one tick claimant per interval (the threadless watchdog, DESIGN.md SS16.3); Relaxed is sound because the gauges the winner reads are advisory relaxed counters and the state machine publishes through ShardHealth's Release stores, not through this CAS"),
    },
    # ----- kp-channel/src/park.rs (waiter registry, both sides) -------
    (PK, "register"): {
        ("fetch_add", 0): spec("doorway", "sleepers gauge up under the registry lock: the Dekker publication a notifier's post-step gauge read must observe", sc=SC_PARK_DEKKER),
        ("fetch_add", 1): spec("stats", "total-parks counter for HealthSnapshot; no synchronization intent"),
    },
    (PK, "cancel"): spec("doorway", "sleepers gauge down on withdrawal, balancing register under the registry lock", sc=SC_PARK_DEKKER),
    (PK, "wake_one"): {
        ("fetch_sub", 0): spec("doorway", "sleepers gauge down as the notifier pops a waiter; keeps the gauge equal to the FIFO length", sc=SC_PARK_DEKKER),
        ("fetch_add", 0): spec("stats", "wake-tokens-spent counter for HealthSnapshot; no synchronization intent"),
    },
    (PK, "notify_many"): spec("doorway", "notifier-side Dekker check after the engine steps: a nonzero gauge means a waiter may have registered before the condition turned true; also bounds the wake fan-out", sc=SC_PARK_DEKKER),
    (PK, "sleepers"): spec("stats", "gauge snapshot for diagnostics and snapshot surfaces", sc="SeqCst matches the gauge's writers for simplicity; callers treat the value as advisory"),
    (PK, "park_count"): spec("stats", "parks-counter snapshot; Relaxed pairs with the Relaxed bump"),
    (PK, "wake_count"): spec("stats", "wakes-counter snapshot; Relaxed pairs with the Relaxed bump"),
    # ----- kp-channel/src/overload.rs (watchdog state machine) --------
    (OV, "state"): spec("helper-guard", "watchdog-state read; Acquire pairs with the Release transitions so a sender acting on Quarantined sees the transition's bookkeeping (baseline, probe pacing)"),
    (OV, "pressure_hot"): spec("helper-guard", "reads the tick claimant's pressure verdict; Acquire pairs with observe's Release store -- senders must not recompute the delta themselves (it would race the claimant's prev_pressure swap)"),
    (OV, "quarantine_count"): spec("stats", "quarantine-counter snapshot; Relaxed pairs with the Relaxed bump"),
    (OV, "probe_count"): spec("stats", "probe-counter snapshot; Relaxed pairs with the Relaxed bump"),
    (OV, "observe"): {
        ("swap", 0): spec("helper-guard", "per-tick pressure delta base: swap installs this tick's reading and returns the last; single tick claimant, so Relaxed suffices -- readers take the verdict from `hot`, never from this word"),
        ("store", 0): spec("helper-guard", "publishes the pressure verdict; Release so a sender's Acquire read observes a coherent flag"),
        ("store", 1): spec("helper-guard", "freeze-oracle baseline: drain counter at suspicion time; Relaxed -- only the tick claimant and the inline re-admission read it, both advisory"),
        ("store", 2): spec("helper-guard", "no-progress tick counter reset; tick-claimant-private between ticks"),
        ("store", 3): spec("helper-guard", "suspicion wall-clock stamp for the min_stall floor; tick-claimant-private"),
        ("store", 4): spec("helper-guard", "Healthy -> Suspect; Release publishes the baseline/stamp stores above to a future claimant's Acquire state read"),
        ("load", 0): spec("helper-guard", "baseline read for the progress check; Relaxed, advisory gauge comparison"),
        ("store", 5): spec("helper-guard", "Suspect -> Healthy (drain progressed or load receded); Release for symmetry with the other transitions"),
        ("fetch_add", 0): spec("helper-guard", "counts a no-progress tick toward the stall_ticks patience; tick-claimant-private between ticks"),
        ("load", 1): spec("helper-guard", "suspicion stamp read for the wall-clock floor; tick-claimant-private"),
        ("fetch_add", 1): spec("stats", "times-quarantined counter; no synchronization intent"),
        ("store", 6): spec("helper-guard", "paces the first probe a full interval out from the quarantine instant; claimed later by CAS in claim_probe"),
        ("store", 7): spec("helper-guard", "Suspect -> Quarantined; Release publishes the probe pacing and counters to senders' Acquire state reads"),
    },
    (OV, "try_readmit"): {
        ("load", 0): spec("helper-guard", "baseline read for the re-admission progress check; Relaxed, advisory gauge comparison"),
        ("compare_exchange", 0): spec("helper-guard", "Quarantined -> Healthy re-admission CAS, raced by the tick claimant and every refused sender (inline promptness); a CAS so exactly one winner reports the Readmitted event (and wakes the shard's parked senders); AcqRel publishes the winner's view, failure Acquire only observes the state"),
    },
    (OV, "claim_probe"): {
        ("load", 0): spec("helper-guard", "probe-due probe; Relaxed -- staleness only delays a probe"),
        ("compare_exchange", 0): spec("helper-guard", "elects one paced probe per interval among refused senders; Relaxed is sound -- the admitted value travels through the engine's own synchronization, this CAS only rations the slots"),
        ("fetch_add", 0): spec("stats", "probes-admitted counter; no synchronization intent"),
    },
    # ----- wcq/lib.rs (record publication and retirement) -------------
    (W, "maybe_help"): {
        ("load", 0): spec("helper-guard", "pending-record gauge probe; zero skips the scan entirely", sc=SC_WCQ_REC),
        ("load", 1): spec("helper-guard", "ctrl scan read: is this record pending, and at which generation", sc=SC_WCQ_REC),
        ("load", 2): spec("helper-guard", "arg read dispatching the pending op to its ring; the seq echo rejects mixed-generation reads", sc=SC_WCQ_REC),
    },
    (W, "publish"): {
        ("load", 0): spec("helper-guard", "own ctrl read deriving the next generation number; the owner is the only writer between publishes", sc=SC_WCQ_REC),
        ("store", 0): spec("doorway", "publishes the operation's argument word before the ctrl goes pending", sc=SC_WCQ_REC),
        ("fetch_add", 0): spec("doorway", "pending-gauge increment: the announcement the helpers' gauge probe must observe", sc=SC_WCQ_REC),
        ("store", 1): spec("doorway", "ctrl word goes PENDING; must follow the arg and gauge in the total order", sc=SC_WCQ_REC),
    },
    (W, "drive"): spec("helper-guard", "owner re-reads its ctrl word between self-help rounds; the slow-path completion also bumps the Relaxed depth-gauge counters (same argument as the fast-path bumps in try_enqueue/try_dequeue)", sc=SC_WCQ_REC),
    (W, "depth"): spec("stats", "advisory resident-value gauge; dequeue counter loaded first so a racing completion overcounts, never goes negative -- exact at quiescence, +1 tolerance per sudden-death kill (stranded-index rule)"),
    (W, "drained"): spec("stats", "monotonic drain heartbeat for the overload watchdog; Relaxed, compared across ticks only"),
    (W, "retire"): {
        ("load", 0): spec("helper-guard", "done-state read before the idle transition", sc=SC_WCQ_REC),
        ("compare_exchange", 0): spec("doorway", "DONE -> IDLE transition; a CAS so the gauge decrement below happens exactly once even against a racing generation", sc=SC_WCQ_REC),
        ("fetch_sub", 0): spec("doorway", "pending-gauge decrement, balancing publish's increment", sc=SC_WCQ_REC),
    },
    (W, "try_enqueue"): spec("stats", "depth-gauge bump after the value is published in the ring; Relaxed -- the gauge is advisory (admission hint), the ring's own SeqCst protocol carries the value"),
    (W, "try_dequeue"): spec("stats", "depth-gauge bump after the value is taken from the ring; Relaxed for the same reason as try_enqueue's"),
    (W, "drop"): spec("reclamation", "handle-drop cleanup: finishes or retires the dying handle's pending record (and recycles a stranded index) before the tid lease can be re-acquired", sc=SC_WCQ_REC),
    # ----- wcq/ring.rs (SCQ ring core + helping slow path) ------------
    (WR, "new"): spec("helper-guard", WHY_INIT),
    (WR, "reset_threshold"): {
        ("load", 0): spec("helper-guard", "skip the reset store when the threshold already holds 3n-1", sc=SC_WCQ),
        ("store", 0): spec("helper-guard", "threshold reset to 3n-1 after a completed enqueue (SCQ's emptiness credit)", sc=SC_WCQ),
        ("fetch_add", 0): spec("stats", "reset-observability counter for tests and the shootout; no synchronization intent"),
    },
    (WR, "catchup"): spec("helper-guard", "drags tail up to head after a dequeuer outran the enqueuers (SCQ catchup); failure values re-read in the loop", sc=SC_WCQ),
    (WR, "advance_tail_past"): spec("helper-guard", "slow path: tail must pass the record's ticket before its tentative install can count", sc=SC_WCQ),
    (WR, "advance_head_past"): spec("helper-guard", "slow path: head must pass the record's ticket before its claim can stand", sc=SC_WCQ),
    (WR, "enqueue_fast"): {
        ("fetch_add", 0): spec("helper-guard", "tail FAA: takes the enqueue ticket", sc=SC_WCQ),
        ("load", 0): spec("helper-guard", "entry read at the ticket's decoded slot", sc=SC_WCQ),
        ("load", 1): spec("helper-guard", "head read for the unsafe-entry admission check", sc=SC_WCQ),
        ("compare_exchange_weak", 0): spec("helper-guard", "the value-install CAS; the failure value re-enters the admission test, so both orderings are SeqCst", sc=SC_WCQ),
    },
    (WR, "dequeue_fast"): {
        ("load", 0): spec("helper-guard", "threshold pre-check: negative means observably empty without burning a ticket", sc=SC_WCQ),
        ("fetch_add", 0): spec("helper-guard", "head FAA: takes the dequeue ticket", sc=SC_WCQ),
        ("load", 1): spec("helper-guard", "entry read at the ticket's decoded slot", sc=SC_WCQ),
        ("compare_exchange_weak", 0): spec("helper-guard", "the value-take CAS (idx swapped out); failure re-enters the entry state machine, so both orderings are SeqCst", sc=SC_WCQ),
        ("compare_exchange_weak", 1): spec("helper-guard", "advance-empty / unsafe-mark CAS on a not-yet-produced entry (SCQ's dequeue rule)", sc=SC_WCQ),
        ("load", 2): spec("helper-guard", "tail read classifying a dead ticket as emptiness vs a lost race", sc=SC_WCQ),
        ("fetch_sub", 0): spec("helper-guard", "threshold decrement on the caught-up-empty path", sc=SC_WCQ),
        ("fetch_sub", 1): spec("helper-guard", "threshold decrement per dead ticket; reaching zero is the empty verdict", sc=SC_WCQ),
    },
    (WR, "help_record"): {
        ("load", 0): spec("helper-guard", "ctrl read opening a help iteration", sc=SC_WCQ_REC),
        ("load", 1): spec("helper-guard", "arg re-read; the seq+ring echo rejects stale dispatches", sc=SC_WCQ_REC),
        ("load", 2): spec("helper-guard", "tail read seeding an unset enqueue ticket", sc=SC_WCQ),
        ("compare_exchange", 0): spec("helper-guard", "installs the enqueue ticket into the ctrl word", sc=SC_WCQ_REC),
        ("load", 3): spec("helper-guard", "threshold read: a negative value completes a ticketless dequeue as EMPTY", sc=SC_WCQ),
        ("compare_exchange", 1): spec("helper-guard", "DONE_EMPTY transition for a ticketless dequeue under a negative threshold", sc=SC_WCQ_REC),
        ("load", 4): spec("helper-guard", "head read seeding an unset dequeue ticket", sc=SC_WCQ),
        ("compare_exchange", 2): spec("helper-guard", "installs the dequeue ticket into the ctrl word", sc=SC_WCQ_REC),
    },
    (WR, "help_enq_step"): {
        ("load", 0): spec("helper-guard", "entry read at the record's ticket", sc=SC_WCQ),
        ("compare_exchange", 0): spec("helper-guard", "DONE_OK transition for a parked tentative; the failure value is re-tested for the already-done echo, so both orderings are SeqCst", sc=SC_WCQ_REC),
        ("compare_exchange", 1): spec("helper-guard", "finalize-or-invalidate of the parked tentative, decided by the ctrl race above", sc=SC_WCQ),
        ("load", 1): spec("helper-guard", "head read for the installable admission check", sc=SC_WCQ),
        ("compare_exchange", 2): spec("helper-guard", "parks the tentative entry at a reserved position", sc=SC_WCQ),
        ("load", 2): spec("helper-guard", "tail read re-ticketing a dead position", sc=SC_WCQ),
        ("compare_exchange", 3): spec("helper-guard", "moves the record to a fresh tail ticket", sc=SC_WCQ_REC),
    },
    (WR, "help_deq_step"): {
        ("load", 0): spec("helper-guard", "entry read at the record's ticket", sc=SC_WCQ),
        ("compare_exchange", 0): spec("helper-guard", "claims a live value for the record (tid-tagged entry)", sc=SC_WCQ),
        ("compare_exchange", 1): spec("helper-guard", "our claim is parked here: the DONE_OK ctrl handshake", sc=SC_WCQ_REC),
        ("compare_exchange", 2): spec("helper-guard", "advance-empty / unsafe-mark CAS, SCQ's dequeue rule on the slow path", sc=SC_WCQ),
        ("load", 1): spec("helper-guard", "tail read classifying a dead ticket as emptiness vs a lost race", sc=SC_WCQ),
        ("compare_exchange", 3): spec("helper-guard", "DONE_EMPTY transition on the caught-up-empty path; the winner owns the threshold decrement below", sc=SC_WCQ_REC),
        ("fetch_sub", 0): spec("helper-guard", "threshold decrement charged to the ctrl-transition winner (exactly once per dead ticket)", sc=SC_WCQ),
        ("load", 2): spec("helper-guard", "head read re-ticketing a dead position", sc=SC_WCQ),
        ("compare_exchange", 4): spec("helper-guard", "moves the record to a fresh head ticket; the winner owns the decrement below", sc=SC_WCQ_REC),
        ("fetch_sub", 1): spec("helper-guard", "threshold decrement per dead ticket; exhausting it completes the record as EMPTY", sc=SC_WCQ),
        ("compare_exchange", 5): spec("helper-guard", "DONE_EMPTY transition when the decrement exhausted the threshold", sc=SC_WCQ_REC),
    },
    (WR, "resolve_tentative"): {
        ("load", 0): spec("helper-guard", "ctrl read of the tentative's record", sc=SC_WCQ_REC),
        ("load", 1): spec("helper-guard", "arg read; the full seq/ring/idx echo decides whether the tentative still belongs to the record", sc=SC_WCQ_REC),
        ("compare_exchange", 0): spec("helper-guard", "DONE_OK transition on behalf of the parked record", sc=SC_WCQ_REC),
        ("compare_exchange", 1): spec("helper-guard", "publishes the final bit of a won tentative", sc=SC_WCQ),
        ("compare_exchange", 2): spec("helper-guard", "invalidates an orphaned tentative (its record moved on)", sc=SC_WCQ),
    },
    (WR, "resolve_claim"): {
        ("load", 0): spec("helper-guard", "ctrl read of the claiming record", sc=SC_WCQ_REC),
        ("load", 1): spec("helper-guard", "arg read; the seq/ring echo validates the claim's provenance", sc=SC_WCQ_REC),
        ("compare_exchange", 0): spec("helper-guard", "DONE_OK transition finishing the claim for its record", sc=SC_WCQ_REC),
        ("compare_exchange", 1): spec("helper-guard", "defensive value-restore for a claim with no record behind it (unreachable by the full-word-CAS argument; restoring is the safe direction)", sc=SC_WCQ),
    },
    (WR, "ensure_finalized"): spec("helper-guard", "owner-side: publishes the final bit if the DONE-transition winner died between the ctrl CAS and the entry CAS", sc=SC_WCQ),
    (WR, "consume_claim"): {
        ("load", 0): spec("helper-guard", "re-reads the claimed entry before consuming it", sc=SC_WCQ),
        ("compare_exchange", 0): spec("helper-guard", "owner consumes its won claim (idx swapped out); the failure value is re-read in the loop, so both orderings are SeqCst", sc=SC_WCQ),
    },
    (WR, "live_indices"): spec("reclamation", "teardown walk under exclusive access (Drop); no concurrent access remains"),
    (WR, "threshold_value"): spec("stats", "diagnostic threshold snapshot", sc=SC_QUIESCENT),
    (WR, "resets"): spec("stats", "reset-counter snapshot; Relaxed pairs with the Relaxed bump"),
    # ----- wcq tests --------------------------------------------------
    (WT, "drop"): spec("stats", WHY_TEST),
    (WT, "drop_releases_leftover_values"): spec("stats", WHY_TEST),
    (WT, "full_and_empty_under_contention"): spec("stats", WHY_TEST),
    (WT, "depth_gauge_settles_under_contention"): spec("stats", WHY_TEST),
}

HEADER = """\
# ATOMICS.toml -- the workspace's memory-ordering manifest.
#
# Every atomic call site in the scoped crates must have a [[site]] entry
# here; `cargo run -p atomics-audit` diffs this file against the code on
# every CI run (see DESIGN.md SS11). Anchors are (file, fn, op, index) --
# the index is the ordinal of that op within the enclosing fn -- so line
# churn never invalidates an entry, but adding/removing/reordering the
# same op inside one fn does (rerun with --dump to re-derive anchors).
#
# Maintained via scripts/gen_atomics_manifest.py (the annotation source
# of truth); small edits can also be made here directly -- the generator
# and the checked-in file must then be kept in sync by the editor.
#
# role taxonomy:
#   linearization - implements a linearization step (names kp-model steps)
#   doorway       - bakery/phase announcement protocol (wait-freedom)
#   helper-guard  - exactly-once helping guards and validations
#   reclamation   - memory reclamation, recycling, hazard machinery
#   stats         - counters/diagnostics with no synchronization intent

[audit]
scope = ["crates/kp-queue", "crates/hazard", "crates/idpool", "crates/wcq", "crates/kp-channel"]
"""

SUPPRESSIONS = [
    ("sc-justification", "crates/hazard/src/tests.rs", None, "test scaffolding uses SeqCst counters for simplicity"),
    ("sc-justification", "crates/hazard/src/retired.rs", None, "only the tests module uses SeqCst; production fns in this file have none"),
    ("sc-justification", "crates/hazard/tests/integration.rs", None, "test scaffolding uses SeqCst counters for simplicity"),
    ("sc-justification", "crates/kp-queue/src/tests.rs", None, "test scaffolding uses SeqCst counters for simplicity"),
    ("sc-justification", "crates/kp-queue/src/hp/tests.rs", None, "test scaffolding uses SeqCst counters for simplicity"),
    ("sc-justification", "crates/wcq/src/tests.rs", None, "test scaffolding uses SeqCst counters for simplicity"),
    ("sc-justification", "crates/idpool/src/lib.rs", "oversubscribed_acquire_never_duplicates", "test scaffolding uses SeqCst for simplicity"),
    ("sc-justification", "crates/idpool/src/lib.rs", "concurrent_reap_race_single_winner", "test scaffolding uses SeqCst for simplicity"),
]


def main():
    skeleton = open(sys.argv[1]).read()
    out = [HEADER]
    unknown = []
    n = 0
    for block in skeleton.strip().split("\n\n"):
        kv = dict(re.findall(r'^(\w+) = (.+)$', block, re.M))
        file, fn = kv["file"].strip('"'), kv["fn"].strip('"')
        op, index = kv["op"].strip('"'), int(kv["index"])
        order = kv["order"]
        entry = TABLE.get((file, fn))
        if isinstance(entry, dict) and "role" not in entry:
            entry = entry.get((op, index))
        if entry is None:
            unknown.append(f"{file} {fn}/{op}#{index}")
            continue
        n += 1
        lines = [
            "[[site]]",
            f'file = "{file}"',
            f'fn = "{fn}"',
            f'op = "{op}"',
            f"index = {index}",
            f"order = {order}",
            f'role = "{entry["role"]}"',
            f'why = "{entry["why"]}"',
        ]
        if entry["sc"]:
            lines.append(f'sc = "{entry["sc"]}"')
        if entry["steps"]:
            steps = ", ".join(f'"{s}"' for s in entry["steps"])
            lines.append(f"model_steps = [{steps}]")
        out.append("\n".join(lines))
    for rule, file, fn, reason in SUPPRESSIONS:
        lines = ["[[suppress]]", f'rule = "{rule}"', f'file = "{file}"']
        if fn:
            lines.append(f'fn = "{fn}"')
        lines.append(f'reason = "{reason}"')
        out.append("\n".join(lines))
    if unknown:
        sys.stderr.write("unannotated sites:\n" + "\n".join(unknown) + "\n")
        sys.exit(1)
    sys.stdout.write("\n\n".join(out) + "\n")
    sys.stderr.write(f"{n} sites annotated\n")


if __name__ == "__main__":
    main()
